module Value = Perm_value.Value
module Dtype = Perm_value.Dtype

(* Expressions are printed fully parenthesised below the boolean level: this
   keeps the printer trivially correct w.r.t. precedence, and rewritten
   queries are machine-generated anyway. Conjunctions/disjunctions are
   flattened for readability. *)

let rec expr_to_string (e : Ast.expr) =
  match e with
  | Lit v -> Value.to_sql v
  | Param n -> "$" ^ string_of_int n
  | Ref (None, c) -> c
  | Ref (Some q, c) -> q ^ "." ^ c
  | Binop (Ast.And, _, _) | Binop (Ast.Or, _, _) -> bool_to_string e
  | Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a)
      (String.uppercase_ascii (Ast.binop_name op))
      (expr_to_string b)
  | Unop (Ast.Not, a) -> Printf.sprintf "(NOT %s)" (expr_to_string a)
  | Unop (Ast.Neg, a) -> Printf.sprintf "(- %s)" (expr_to_string a)
  | Is_null { negated; arg } ->
    Printf.sprintf "(%s IS %sNULL)" (expr_to_string arg)
      (if negated then "NOT " else "")
  | Between { negated; arg; low; high } ->
    Printf.sprintf "(%s %sBETWEEN %s AND %s)" (expr_to_string arg)
      (if negated then "NOT " else "")
      (expr_to_string low) (expr_to_string high)
  | In_list { negated; arg; candidates } ->
    Printf.sprintf "(%s %sIN (%s))" (expr_to_string arg)
      (if negated then "NOT " else "")
      (String.concat ", " (List.map expr_to_string candidates))
  | In_query { negated; arg; subquery } ->
    Printf.sprintf "(%s %sIN (%s))" (expr_to_string arg)
      (if negated then "NOT " else "")
      (query_to_string subquery)
  | Exists { negated; subquery } ->
    Printf.sprintf "(%sEXISTS (%s))"
      (if negated then "NOT " else "")
      (query_to_string subquery)
  | Scalar_subquery q -> Printf.sprintf "(%s)" (query_to_string q)
  | Case { operand; branches; else_ } ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf "CASE";
    (match operand with
    | Some e -> Buffer.add_string buf (" " ^ expr_to_string e)
    | None -> ());
    List.iter
      (fun (c, r) ->
        Buffer.add_string buf
          (Printf.sprintf " WHEN %s THEN %s" (expr_to_string c)
             (expr_to_string r)))
      branches;
    (match else_ with
    | Some e -> Buffer.add_string buf (" ELSE " ^ expr_to_string e)
    | None -> ());
    Buffer.add_string buf " END";
    Buffer.contents buf
  | Cast (e, ty) ->
    Printf.sprintf "CAST(%s AS %s)" (expr_to_string e) (Dtype.to_string ty)
  | Func (name, args) ->
    Printf.sprintf "%s(%s)" name
      (String.concat ", " (List.map expr_to_string args))
  | Agg { func; distinct; arg } ->
    Printf.sprintf "%s(%s%s)"
      (Ast.agg_name func)
      (if distinct then "DISTINCT " else "")
      (match arg with None -> "*" | Some e -> expr_to_string e)

and bool_to_string e =
  (* Flatten nested AND/OR chains of the same connective. *)
  let rec collect op e acc =
    match e with
    | Ast.Binop (op', a, b) when op' = op -> collect op a (collect op b acc)
    | e -> e :: acc
  in
  match e with
  | Ast.Binop ((Ast.And | Ast.Or) as op, _, _) ->
    let parts = collect op e [] in
    let sep = if op = Ast.And then " AND " else " OR " in
    "(" ^ String.concat sep (List.map expr_to_string parts) ^ ")"
  | e -> expr_to_string e

and select_item_to_string = function
  | Ast.Star -> "*"
  | Ast.Table_star t -> t ^ ".*"
  | Ast.Sel_expr (e, None) -> expr_to_string e
  | Ast.Sel_expr (e, Some a) -> expr_to_string e ^ " AS " ^ a

and from_item_to_string (f : Ast.from_item) =
  let base =
    match f.source with
    | From_table t -> t
    | From_subquery q -> "(" ^ query_to_string q ^ ")"
    | From_join { kind; left; right; cond } ->
      let kw =
        match kind with
        | Ast.Inner -> "JOIN"
        | Ast.Left -> "LEFT OUTER JOIN"
        | Ast.Right -> "RIGHT OUTER JOIN"
        | Ast.Full -> "FULL OUTER JOIN"
        | Ast.Cross -> "CROSS JOIN"
      in
      let on =
        match cond with
        | Some c -> " ON " ^ expr_to_string c
        | None -> ""
      in
      Printf.sprintf "%s %s %s%s"
        (from_item_to_string left)
        kw
        (from_item_to_string right)
        on
  in
  let with_alias =
    match f.alias with None -> base | Some a -> base ^ " AS " ^ a
  in
  let with_base =
    if f.baserelation then with_alias ^ " BASERELATION" else with_alias
  in
  match f.prov_attrs with
  | None -> with_base
  | Some attrs -> with_base ^ " PROVENANCE (" ^ String.concat ", " attrs ^ ")"

and select_to_string (s : Ast.select) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT";
  (match s.provenance with
  | Some Ast.Influence -> Buffer.add_string buf " PROVENANCE"
  | Some Ast.Copy_partial ->
    Buffer.add_string buf " PROVENANCE ON CONTRIBUTION (COPY)"
  | Some Ast.Copy_complete ->
    Buffer.add_string buf " PROVENANCE ON CONTRIBUTION (COPY COMPLETE)"
  | None -> ());
  if s.distinct then Buffer.add_string buf " DISTINCT";
  Buffer.add_string buf " ";
  Buffer.add_string buf
    (String.concat ", " (List.map select_item_to_string s.items));
  if s.from <> [] then begin
    Buffer.add_string buf " FROM ";
    Buffer.add_string buf
      (String.concat ", " (List.map from_item_to_string s.from))
  end;
  (match s.where with
  | Some e -> Buffer.add_string buf (" WHERE " ^ expr_to_string e)
  | None -> ());
  if s.group_by <> [] then begin
    Buffer.add_string buf " GROUP BY ";
    Buffer.add_string buf
      (String.concat ", " (List.map expr_to_string s.group_by))
  end;
  (match s.having with
  | Some e -> Buffer.add_string buf (" HAVING " ^ expr_to_string e)
  | None -> ());
  Buffer.contents buf

and body_to_string = function
  | Ast.Select s -> select_to_string s
  | Ast.Set_op { kind; all; left; right } ->
    let kw =
      match kind with
      | Ast.Union -> "UNION"
      | Ast.Intersect -> "INTERSECT"
      | Ast.Except -> "EXCEPT"
    in
    Printf.sprintf "(%s) %s%s (%s)" (query_to_string left) kw
      (if all then " ALL" else "")
      (query_to_string right)

and query_to_string (q : Ast.query) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (body_to_string q.body);
  if q.order_by <> [] then begin
    Buffer.add_string buf " ORDER BY ";
    Buffer.add_string buf
      (String.concat ", "
         (List.map
            (fun (e, dir) ->
              expr_to_string e
              ^ match dir with Ast.Asc -> " ASC" | Ast.Desc -> " DESC")
            q.order_by))
  end;
  (match q.limit with
  | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n)
  | None -> ());
  (match q.offset with
  | Some n -> Buffer.add_string buf (Printf.sprintf " OFFSET %d" n)
  | None -> ());
  Buffer.contents buf

let statement_to_string = function
  | Ast.St_query q -> query_to_string q
  | Ast.St_create_table (name, cols) ->
    Printf.sprintf "CREATE TABLE %s (%s)" name
      (String.concat ", "
         (List.map
            (fun (c, ty) -> c ^ " " ^ Dtype.to_string ty)
            cols))
  | Ast.St_create_table_as (name, q) ->
    Printf.sprintf "CREATE TABLE %s AS %s" name (query_to_string q)
  | Ast.St_create_view (name, q) ->
    Printf.sprintf "CREATE VIEW %s AS %s" name (query_to_string q)
  | Ast.St_drop_table name -> "DROP TABLE " ^ name
  | Ast.St_drop_view name -> "DROP VIEW " ^ name
  | Ast.St_insert_values (name, rows) ->
    Printf.sprintf "INSERT INTO %s VALUES %s" name
      (String.concat ", "
         (List.map
            (fun row ->
              "(" ^ String.concat ", " (List.map expr_to_string row) ^ ")")
            rows))
  | Ast.St_insert_select (name, q) ->
    Printf.sprintf "INSERT INTO %s %s" name (query_to_string q)
  | Ast.St_delete (name, where) ->
    Printf.sprintf "DELETE FROM %s%s" name
      (match where with
      | Some e -> " WHERE " ^ expr_to_string e
      | None -> "")
  | Ast.St_update (name, assigns, where) ->
    Printf.sprintf "UPDATE %s SET %s%s" name
      (String.concat ", "
         (List.map
            (fun (c, e) -> c ^ " = " ^ expr_to_string e)
            assigns))
      (match where with
      | Some e -> " WHERE " ^ expr_to_string e
      | None -> "")
  | Ast.St_store_provenance (q, name) ->
    Printf.sprintf "STORE PROVENANCE %s INTO %s" (query_to_string q) name
  | Ast.St_explain q -> "EXPLAIN " ^ query_to_string q
  | Ast.St_explain_analyze q -> "EXPLAIN ANALYZE " ^ query_to_string q
  | Ast.St_copy_from (name, path) ->
    Printf.sprintf "COPY %s FROM %s" name (Value.to_sql (Value.Text path))
  | Ast.St_copy_to (name, path) ->
    Printf.sprintf "COPY %s TO %s" name (Value.to_sql (Value.Text path))
  | Ast.St_create_index { index; table; column } ->
    Printf.sprintf "CREATE INDEX %s ON %s (%s)" index table column
  | Ast.St_drop_index name -> "DROP INDEX " ^ name
  | Ast.St_begin -> "BEGIN"
  | Ast.St_commit -> "COMMIT"
  | Ast.St_rollback -> "ROLLBACK"
