(** Logical optimizer and cost model (paper Fig. 3, "Planner").

    Perm hands rewritten provenance queries to the host DBMS optimizer and
    "benefits from the query optimization techniques incorporated into
    PostgreSQL" (§2.3); this module plays that role. It also supplies the
    cost oracle behind the paper's "cost-based solution for choosing the
    best rewrite strategy" (§2.2).

    Rewrites (each independently switchable, for the optimizer-ablation
    bench):
    - constant folding over scalar expressions (errors like division by
      zero are left in place to fail at runtime, as SQL requires);
    - predicate pushdown: filters move below projections (with
      substitution) and into the matching side of inner/cross joins —
      never past outer joins, aggregates or limits;
    - projection pruning: unused projection columns and aggregate calls are
      dropped, and identity projections removed.

    The cardinality model uses table statistics (row counts and per-column
    distinct counts) with textbook selectivities: [1/distinct] for
    equality with a constant, [1/max(distinct)] for equi-joins, fixed
    selectivities for ranges. *)

type stats = {
  table_rows : string -> int;
  table_distinct : string -> string -> int;
      (** [table_distinct table column] — distinct values, [>= 1] *)
  has_index : string -> string -> bool;
      (** [has_index table column] — a hash index exists, enabling the
          [Filter(col = const)(Scan)] to [Index_scan] rewrite *)
}

val no_stats : stats
(** Assumes 1000 rows and 100 distinct values everywhere; used when the
    caller has no statistics (plain unit tests). *)

val estimate_rows : stats -> Perm_algebra.Plan.t -> float

val node_estimates :
  stats -> Perm_algebra.Plan.t -> (Perm_algebra.Plan.t * float) list
(** Cardinality estimates for every node of the plan, in pre-order — the
    same numbering {!Perm_executor.Executor.node_ids} assigns, so the
    i-th entry is the estimate for node id i. Feeds the EXPLAIN ANALYZE
    est/act annotations and the [perm_stat_plans] view. *)

val estimate_total : stats -> Perm_algebra.Plan.t -> float
(** Sum of {!node_estimates} over the whole tree — the per-execution
    "estimated row traffic" scalar retained by the telemetry history.
    Estimates are deliberately kept out of {!Perm_executor.Executor.plan_hash}:
    refreshed statistics move this total without moving the hash unless
    the optimizer actually picks a different plan. *)

val cost : stats -> Perm_algebra.Plan.t -> float
(** Abstract cost units; only comparisons between plans are meaningful. *)

type config = {
  fold_constants : bool;
  push_predicates : bool;
  prune_projections : bool;
  decorrelate_applies : bool;
      (** rewrite [Apply] over an uncorrelated (filtered) right side into
          the equivalent semi/anti/inner/left hash join. Separately
          switchable because it also de-correlates the provenance
          rewriter's {e lateral} aggregation strategy back into the join
          strategy — the strategy-ablation bench turns it off to measure
          the raw lateral plan. *)
  use_indexes : bool;
      (** replace [Filter(col = const)] directly over a [Scan] by an
          [Index_scan] when the session has a matching hash index *)
}

val default_config : config
(** Everything on. *)

val disabled_config : config

val optimize : ?config:config -> stats -> Perm_algebra.Plan.t -> Perm_algebra.Plan.t
(** Semantics-preserving (pinned by qcheck equivalence properties in the
    test suite). Plans must be marker-free. *)

(** {1 Parallel eligibility}

    Decision support for the executor's morsel-driven parallel mode: a
    mirror of the plan shapes [Executor.Par] accepts, plus a cardinality
    threshold from {!stats}. The executor independently re-checks shape
    when compiling and falls back to serial closures on any mismatch, so
    correctness never depends on this mirror staying in sync. *)

type par_verdict =
  | Par_ok of { par_table : string; par_est_rows : int }
      (** driving base relation of the morsel scan + its estimated rows *)
  | Par_fallback of string
      (** reason slug: ["small"], ["apply"], ["outer-join"], ["agg"],
          ["index-scan"], ["values"], ["shape"] *)

val default_parallel_threshold : int
(** Minimum driving-table cardinality worth a pool fan-out (2048). *)

val parallel_verdict :
  ?threshold:int -> stats -> Perm_algebra.Plan.t -> par_verdict

val choose_morsel_rows :
  batch_rows:int -> driving_rows:int -> domains:int -> int
(** Morsel size for the batch-at-a-time parallel path: a whole multiple
    of [batch_rows] targeting ~4 morsels per domain over the driving
    relation, never smaller than one batch. *)
