module Plan = Perm_algebra.Plan
module Expr = Perm_algebra.Expr
module Attr = Perm_algebra.Attr
module Value = Perm_value.Value

type stats = {
  table_rows : string -> int;
  table_distinct : string -> string -> int;
  has_index : string -> string -> bool;
}

let no_stats =
  {
    table_rows = (fun _ -> 1000);
    table_distinct = (fun _ _ -> 100);
    has_index = (fun _ _ -> false);
  }

(* ------------------------------------------------------------------ *)
(* Cardinality estimation                                              *)
(* ------------------------------------------------------------------ *)

(* Track which base column each attribute aliases, to look up distinct
   counts through projections and joins. *)
let rec column_origin (plan : Plan.t) (a : Attr.t) : (string * string) option =
  match plan with
  | Plan.Scan { table; attrs } | Plan.Index_scan { table; attrs; _ } ->
    if List.exists (fun (x : Attr.t) -> Attr.equal x a) attrs then
      Some (table, a.Attr.name)
    else None
  | Plan.Project { child; cols } -> (
    match List.find_opt (fun (_, out) -> Attr.equal out a) cols with
    | Some (Expr.Attr src, _) -> column_origin child src
    | Some _ -> None
    | None -> None)
  | Plan.Filter { child; _ }
  | Plan.Distinct child
  | Plan.Sort { child; _ }
  | Plan.Limit { child; _ } ->
    column_origin child a
  | Plan.Join { left; right; _ } | Plan.Apply { left; right; _ } -> (
    match column_origin left a with
    | Some o -> Some o
    | None -> column_origin right a)
  | Plan.Aggregate { child; group_by; _ } -> (
    match List.find_opt (fun (_, out) -> Attr.equal out a) group_by with
    | Some (Expr.Attr src, _) -> column_origin child src
    | _ -> None)
  | Plan.Values _ | Plan.Set_op _ | Plan.Prov _ | Plan.Baserel _
  | Plan.External _ ->
    None

let distinct_of stats plan (e : Expr.t) ~rows =
  match e with
  | Expr.Attr a -> (
    match column_origin plan a with
    | Some (table, col) -> float_of_int (max 1 (stats.table_distinct table col))
    | None -> max 1. (rows /. 10.))
  | _ -> max 1. (rows /. 10.)

let rec selectivity stats plan ~rows (pred : Expr.t) =
  match pred with
  | Expr.Binop (Expr.And, a, b) ->
    selectivity stats plan ~rows a *. selectivity stats plan ~rows b
  | Expr.Binop (Expr.Or, a, b) ->
    let sa = selectivity stats plan ~rows a
    and sb = selectivity stats plan ~rows b in
    min 1. (sa +. sb -. (sa *. sb))
  | Expr.Unop (Expr.Not, a) -> 1. -. selectivity stats plan ~rows a
  | Expr.Binop (Expr.Eq, (Expr.Attr _ as a), Expr.Const _)
  | Expr.Binop (Expr.Eq, Expr.Const _, (Expr.Attr _ as a)) ->
    1. /. distinct_of stats plan a ~rows
  | Expr.Binop (Expr.Eq, a, b) ->
    1. /. max (distinct_of stats plan a ~rows) (distinct_of stats plan b ~rows)
  | Expr.Binop (Expr.Neq, _, _) -> 0.9
  | Expr.Binop ((Expr.Lt | Expr.Leq | Expr.Gt | Expr.Geq), _, _) -> 0.33
  | Expr.Binop (Expr.Like, _, _) -> 0.1
  | Expr.Unop (Expr.Is_null, _) -> 0.05
  | Expr.Const (Value.Bool true) -> 1.
  | Expr.Const (Value.Bool false) -> 0.
  | _ -> 0.5

let rec estimate_rows stats (plan : Plan.t) : float =
  match plan with
  | Plan.Scan { table; _ } -> float_of_int (max 1 (stats.table_rows table))
  | Plan.Index_scan { table; attrs; key_col; _ } ->
    let rows = float_of_int (max 1 (stats.table_rows table)) in
    let distinct =
      match List.nth_opt attrs key_col with
      | Some (a : Attr.t) ->
        float_of_int (max 1 (stats.table_distinct table a.Attr.name))
      | None -> 10.
    in
    max 1. (rows /. distinct)
  | Plan.Values { rows; _ } -> float_of_int (max 1 (List.length rows))
  | Plan.Project { child; _ } | Plan.Sort { child; _ } ->
    estimate_rows stats child
  | Plan.Filter { child; pred } ->
    let rows = estimate_rows stats child in
    max 1. (rows *. selectivity stats child ~rows pred)
  | Plan.Join { kind; left; right; pred } -> (
    let l = estimate_rows stats left and r = estimate_rows stats right in
    let cross = l *. r in
    let matched =
      match pred with
      | None -> cross
      | Some p -> max 1. (cross *. selectivity stats plan ~rows:cross p)
    in
    match kind with
    | Plan.Inner | Plan.Cross -> matched
    | Plan.Left -> max l matched
    | Plan.Right -> max r matched
    | Plan.Full -> max (max l r) matched
    | Plan.Semi -> max 1. (l /. 2.)
    | Plan.Anti -> max 1. (l /. 2.))
  | Plan.Apply { kind; left; right } -> (
    let l = estimate_rows stats left and r = estimate_rows stats right in
    match kind with
    | Plan.A_cross -> l *. r
    | Plan.A_outer -> max l (l *. r)
    | Plan.A_scalar _ -> l
    | Plan.A_semi | Plan.A_anti -> max 1. (l /. 2.))
  | Plan.Aggregate { child; group_by; _ } ->
    let rows = estimate_rows stats child in
    if group_by = [] then 1.
    else
      let groups =
        List.fold_left
          (fun acc (e, _) -> acc *. distinct_of stats child e ~rows)
          1. group_by
      in
      max 1. (min rows groups)
  | Plan.Distinct child ->
    let rows = estimate_rows stats child in
    max 1. (rows /. 2.)
  | Plan.Set_op { kind; all; left; right; _ } -> (
    let l = estimate_rows stats left and r = estimate_rows stats right in
    match kind, all with
    | Plan.Union, true -> l +. r
    | Plan.Union, false -> max 1. ((l +. r) /. 2.)
    | Plan.Intersect, _ -> max 1. (min l r /. 2.)
    | Plan.Except, _ -> max 1. (l /. 2.))
  | Plan.Limit { child; limit; offset } -> (
    let rows = estimate_rows stats child in
    match limit with
    | Some n -> max 1. (min rows (float_of_int (n + offset)) -. float_of_int offset)
    | None -> max 1. (rows -. float_of_int offset))
  | Plan.Prov { child; _ } | Plan.Baserel { child; _ } | Plan.External { child; _ }
    ->
    estimate_rows stats child

(* Per-node estimates over the whole tree, in pre-order — the same order
   the executor numbers plan nodes, so index i is the estimate for node id
   i. Feeds the EXPLAIN ANALYZE est/act annotations and perm_stat_plans. *)
let node_estimates stats (plan : Plan.t) : (Plan.t * float) list =
  let rec walk acc node =
    List.fold_left walk ((node, estimate_rows stats node) :: acc)
      (Plan.children node)
  in
  List.rev (walk [] plan)

(* Total estimated row traffic of the plan — the scalar the telemetry
   history retains per execution so the regression watchdog can tell
   "the input grew" apart from "the plan changed". Estimates never feed
   the plan hash itself: Executor.plan_hash is computed from plan
   structure alone, so refreshed statistics move this total without
   moving the hash (unless the optimizer actually picks another plan). *)
let estimate_total stats (plan : Plan.t) : float =
  List.fold_left (fun acc (_, est) -> acc +. est) 0. (node_estimates stats plan)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)
(* ------------------------------------------------------------------ *)

(* CPU-centric costs: one unit per produced tuple plus operator-specific
   work. Joins are costed as hash joins when an equality conjunct exists,
   nested loops otherwise; Apply is inherently nested. *)
let rec cost stats (plan : Plan.t) : float =
  let out = estimate_rows stats plan in
  match plan with
  | Plan.Scan _ | Plan.Values _ -> out
  | Plan.Index_scan _ -> 1. +. out (* probe + emit, no full scan *)
  | Plan.Project { child; _ } -> cost stats child +. out
  | Plan.Filter { child; _ } -> cost stats child +. estimate_rows stats child
  | Plan.Join { left; right; pred; _ } ->
    let l = estimate_rows stats left and r = estimate_rows stats right in
    let has_equality =
      match pred with
      | None -> false
      | Some p ->
        List.exists
          (function
            | Expr.Binop (Expr.Eq, _, _) -> true
            | Expr.Binop (Expr.Or, Expr.Binop (Expr.Eq, _, _), _) -> true
            | _ -> false)
          (Expr.conjuncts p)
    in
    let join_work = if has_equality then l +. r else l *. r in
    cost stats left +. cost stats right +. join_work +. out
  | Plan.Apply { left; right; _ } ->
    let l = estimate_rows stats left in
    cost stats left +. (l *. cost stats right) +. out
  | Plan.Aggregate { child; _ } ->
    cost stats child +. estimate_rows stats child +. out
  | Plan.Distinct child -> cost stats child +. estimate_rows stats child
  | Plan.Set_op { left; right; _ } ->
    cost stats left +. cost stats right
    +. estimate_rows stats left +. estimate_rows stats right
  | Plan.Sort { child; _ } ->
    let n = estimate_rows stats child in
    cost stats child +. (n *. log (max 2. n) /. log 2.)
  | Plan.Limit { child; _ } -> cost stats child
  | Plan.Prov { child; _ } | Plan.Baserel { child; _ } | Plan.External { child; _ }
    ->
    cost stats child

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let try_fold_binop op (a : Value.t) (b : Value.t) : Value.t option =
  let of_result = function Ok v -> Some v | Error _ -> None in
  match (op : Expr.binop) with
  | Expr.Add -> of_result (Value.add a b)
  | Expr.Sub -> of_result (Value.sub a b)
  | Expr.Mul -> of_result (Value.mul a b)
  | Expr.Div -> of_result (Value.div a b)
  | Expr.Mod -> (
    match a, b with
    | Value.Int x, Value.Int y when y <> 0 -> Some (Value.Int (x mod y))
    | Value.Null, _ | _, Value.Null -> Some Value.Null
    | _ -> None)
  | Expr.Eq -> Some (Value.sql_eq a b)
  | Expr.Neq -> Some (Value.sql_neq a b)
  | Expr.Lt -> Some (Value.sql_lt a b)
  | Expr.Leq -> Some (Value.sql_leq a b)
  | Expr.Gt -> Some (Value.sql_gt a b)
  | Expr.Geq -> Some (Value.sql_geq a b)
  | Expr.Concat -> of_result (Value.concat a b)
  | Expr.Like -> Some (Value.like a b)
  | Expr.And | Expr.Or -> None (* handled with Kleene shortcuts below *)

let rec fold_expr (e : Expr.t) : Expr.t =
  match e with
  | Expr.Const _ | Expr.Attr _ -> e
  | Expr.Binop (Expr.And, a, b) -> (
    match fold_expr a, fold_expr b with
    | Expr.Const (Value.Bool false), _ | _, Expr.Const (Value.Bool false) ->
      Expr.Const (Value.Bool false)
    | Expr.Const (Value.Bool true), x | x, Expr.Const (Value.Bool true) -> x
    | a, b -> Expr.Binop (Expr.And, a, b))
  | Expr.Binop (Expr.Or, a, b) -> (
    match fold_expr a, fold_expr b with
    | Expr.Const (Value.Bool true), _ | _, Expr.Const (Value.Bool true) ->
      Expr.Const (Value.Bool true)
    | Expr.Const (Value.Bool false), x | x, Expr.Const (Value.Bool false) -> x
    | a, b -> Expr.Binop (Expr.Or, a, b))
  | Expr.Binop (op, a, b) -> (
    let a = fold_expr a and b = fold_expr b in
    match a, b with
    | Expr.Const va, Expr.Const vb -> (
      match try_fold_binop op va vb with
      | Some v -> Expr.Const v
      | None -> Expr.Binop (op, a, b))
    | _ -> Expr.Binop (op, a, b))
  | Expr.Unop (Expr.Not, a) -> (
    match fold_expr a with
    | Expr.Const (Value.Bool b) -> Expr.Const (Value.Bool (not b))
    | Expr.Const Value.Null -> Expr.Const Value.Null
    | a -> Expr.Unop (Expr.Not, a))
  | Expr.Unop (Expr.Neg, a) -> (
    match fold_expr a with
    | Expr.Const v -> (
      match Value.neg v with
      | Ok v' -> Expr.Const v'
      | Error _ -> Expr.Unop (Expr.Neg, Expr.Const v))
    | a -> Expr.Unop (Expr.Neg, a))
  | Expr.Unop (Expr.Is_null, a) -> (
    match fold_expr a with
    | Expr.Const v -> Expr.Const (Value.Bool (Value.is_null v))
    | a -> Expr.Unop (Expr.Is_null, a))
  | Expr.Case { branches; else_ } ->
    Expr.Case
      {
        branches = List.map (fun (c, r) -> (fold_expr c, fold_expr r)) branches;
        else_ = Option.map fold_expr else_;
      }
  | Expr.Cast (a, ty) -> (
    match fold_expr a with
    | Expr.Const v -> (
      match Value.cast ty v with
      | Ok v' -> Expr.Const v'
      | Error _ -> Expr.Cast (Expr.Const v, ty))
    | a -> Expr.Cast (a, ty))
  | Expr.Func (name, args) -> Expr.Func (name, List.map fold_expr args)

let rec map_exprs f (plan : Plan.t) : Plan.t =
  let plan = Plan.map_children (map_exprs f) plan in
  match plan with
  | Plan.Scan _ | Plan.Index_scan _ | Plan.Values _ | Plan.Distinct _
  | Plan.Prov _ | Plan.Baserel _ | Plan.External _ ->
    plan
  | Plan.Project r ->
    Plan.Project { r with cols = List.map (fun (e, a) -> (f e, a)) r.cols }
  | Plan.Filter r -> Plan.Filter { r with pred = f r.pred }
  | Plan.Join r -> Plan.Join { r with pred = Option.map f r.pred }
  | Plan.Apply _ -> plan
  | Plan.Aggregate r ->
    Plan.Aggregate
      {
        r with
        group_by = List.map (fun (e, a) -> (f e, a)) r.group_by;
        aggs =
          List.map
            (fun (c : Plan.agg_call) -> { c with arg = Option.map f c.arg })
            r.aggs;
      }
  | Plan.Set_op _ -> plan
  | Plan.Sort r ->
    Plan.Sort { r with keys = List.map (fun (e, d) -> (f e, d)) r.keys }
  | Plan.Limit _ -> plan

(* ------------------------------------------------------------------ *)
(* Predicate pushdown                                                  *)
(* ------------------------------------------------------------------ *)

let attrs_subset set (schema : Attr.t list) =
  Attr.Set.for_all
    (fun (a : Attr.t) -> List.exists (fun (x : Attr.t) -> Attr.equal x a) schema)
    set

(* Push one conjunct as far down as it goes; returns None if it was absorbed
   into the plan, or Some pred if it must stay above. *)
let rec push_conjunct (pred : Expr.t) (plan : Plan.t) : Plan.t option =
  match plan with
  | Plan.Filter { child; pred = p } -> (
    match push_conjunct pred child with
    | Some child' -> Some (Plan.Filter { child = child'; pred = p })
    | None -> None)
  | Plan.Project { child; cols } ->
    (* substitute projection definitions into the predicate *)
    let mapping =
      List.fold_left
        (fun acc (e, out) -> Attr.Map.add out e acc)
        Attr.Map.empty cols
    in
    let pred' = Expr.substitute mapping pred in
    (* only push when the rewritten predicate is strictly over child attrs
       (it always is, since projections define all their outputs) *)
    if attrs_subset (Expr.attrs pred') (Plan.schema child) then
      Some
        (Plan.Project
           { child = with_filter child pred'; cols })
    else None
  | Plan.Join { kind = (Plan.Inner | Plan.Cross) as kind; left; right; pred = jp }
    ->
    let pa = Expr.attrs pred in
    if attrs_subset pa (Plan.schema left) then
      Some (Plan.Join { kind; left = with_filter left pred; right; pred = jp })
    else if attrs_subset pa (Plan.schema right) then
      Some (Plan.Join { kind; left; right = with_filter right pred; pred = jp })
    else None
  | Plan.Join { kind = Plan.Semi | Plan.Anti; left; right; pred = jp } ->
    let pa = Expr.attrs pred in
    if attrs_subset pa (Plan.schema left) then
      let kind = (match plan with Plan.Join { kind; _ } -> kind | _ -> assert false) in
      Some (Plan.Join { kind; left = with_filter left pred; right; pred = jp })
    else None
  | Plan.Sort { child; keys } ->
    Some (Plan.Sort { child = with_filter child pred; keys })
  | Plan.Distinct child -> Some (Plan.Distinct (with_filter child pred))
  | Plan.Scan _ | Plan.Index_scan _ | Plan.Values _ | Plan.Join _
  | Plan.Apply _ | Plan.Aggregate _ | Plan.Set_op _ | Plan.Limit _
  | Plan.Prov _ | Plan.Baserel _ | Plan.External _ ->
    None

and with_filter plan pred =
  match push_conjunct pred plan with
  | Some plan' -> plan'
  | None -> (
    match plan with
    | Plan.Filter { child; pred = p } ->
      Plan.Filter { child; pred = Expr.Binop (Expr.And, p, pred) }
    | _ -> Plan.Filter { child = plan; pred })

let rec pushdown (plan : Plan.t) : Plan.t =
  let plan = Plan.map_children pushdown plan in
  match plan with
  | Plan.Filter { child; pred } ->
    let conjuncts = Expr.conjuncts pred in
    List.fold_left (fun acc c -> with_filter acc c) child conjuncts
  | p -> p

(* ------------------------------------------------------------------ *)
(* Projection pruning                                                  *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Apply de-correlation                                                 *)
(* ------------------------------------------------------------------ *)

(* Attributes a subtree references but does not itself produce: non-empty
   means the subtree is correlated with an enclosing Apply. *)
let free_attrs plan =
  let produced = ref Attr.Set.empty in
  let referenced = ref Attr.Set.empty in
  let ref_expr e = referenced := Attr.Set.union !referenced (Expr.attrs e) in
  let rec go (p : Plan.t) =
    produced :=
      List.fold_left (fun acc a -> Attr.Set.add a acc) !produced (Plan.schema p);
    (match p with
    | Plan.Scan _ -> ()
    | Plan.Index_scan { key; _ } -> ref_expr key
    | Plan.Values { rows; _ } -> List.iter (List.iter ref_expr) rows
    | Plan.Project { cols; _ } -> List.iter (fun (e, _) -> ref_expr e) cols
    | Plan.Filter { pred; _ } -> ref_expr pred
    | Plan.Join { pred; _ } -> Option.iter ref_expr pred
    | Plan.Apply _ -> ()
    | Plan.Aggregate { group_by; aggs; _ } ->
      List.iter (fun (e, _) -> ref_expr e) group_by;
      List.iter
        (fun (c : Plan.agg_call) -> Option.iter ref_expr c.arg)
        aggs;
      (* group-by output attrs are produced but not part of schema when
         pruned; they are in the schema, handled above *)
      ()
    | Plan.Distinct _ | Plan.Set_op _ | Plan.Limit _ -> ()
    | Plan.Sort { keys; _ } -> List.iter (fun (e, _) -> ref_expr e) keys
    | Plan.Prov _ | Plan.Baserel _ | Plan.External _ -> ());
    List.iter go (Plan.children p)
  in
  go plan;
  Attr.Set.diff !referenced !produced

(* Rewrite [Apply] over an uncorrelated right side into the equivalent join:
   the analyzer and the provenance rewriter always produce Apply for
   subqueries, with the correlation predicate as a Filter stack on the right
   — when the filtered core is uncorrelated, a (semi/anti/inner/left) hash
   join computes the same result without per-row re-evaluation. *)
let rec decorrelate (plan : Plan.t) : Plan.t =
  let plan = Plan.map_children decorrelate plan in
  match plan with
  | Plan.Apply { kind; left; right } -> (
    let rec peel preds = function
      | Plan.Filter { child; pred } -> peel (pred :: preds) child
      | core -> (core, preds)
    in
    let core, preds = peel [] right in
    if not (Attr.Set.is_empty (free_attrs core)) then plan
    else
      let pred = match preds with [] -> None | ps -> Some (Expr.conjoin ps) in
      match kind with
      | Plan.A_semi -> Plan.Join { kind = Plan.Semi; left; right = core; pred }
      | Plan.A_anti -> Plan.Join { kind = Plan.Anti; left; right = core; pred }
      | Plan.A_cross ->
        let kind = if pred = None then Plan.Cross else Plan.Inner in
        Plan.Join { kind; left; right = core; pred }
      | Plan.A_outer -> Plan.Join { kind = Plan.Left; left; right = core; pred }
      | Plan.A_scalar _ -> plan)
  | p -> p

(* Collapse adjacent projections by substituting the inner definitions into
   the outer expressions — the provenance rewrite stacks projections (one
   per rule application), which this flattens back. *)
let rec merge_projects (plan : Plan.t) : Plan.t =
  let plan = Plan.map_children merge_projects plan in
  match plan with
  | Plan.Project { child = Plan.Project { child; cols = inner }; cols = outer } ->
    let mapping =
      List.fold_left
        (fun acc (e, out) -> Attr.Map.add out e acc)
        Attr.Map.empty inner
    in
    merge_projects
      (Plan.Project
         {
           child;
           cols = List.map (fun (e, out) -> (Expr.substitute mapping e, out)) outer;
         })
  | p -> p

let rec prune ~(needed : Attr.Set.t option) (plan : Plan.t) : Plan.t =
  let keep (a : Attr.t) =
    match needed with None -> true | Some s -> Attr.Set.mem a s
  in
  match plan with
  | Plan.Scan _ | Plan.Index_scan _ | Plan.Values _ -> plan
  | Plan.Project { child; cols } ->
    let cols = List.filter (fun (_, out) -> keep out) cols in
    let cols =
      (* never produce a zero-column projection *)
      match cols, plan with
      | [], Plan.Project { cols = c :: _; _ } -> [ c ]
      | cols, _ -> cols
    in
    let child_needed =
      List.fold_left
        (fun acc (e, _) -> Attr.Set.union acc (Expr.attrs e))
        Attr.Set.empty cols
    in
    let child' = prune ~needed:(Some child_needed) child in
    (* drop identity projections *)
    let identity =
      List.length cols = List.length (Plan.schema child')
      && List.for_all2
           (fun (e, out) (src : Attr.t) ->
             match e with
             | Expr.Attr a -> Attr.equal a src && Attr.equal out src
             | _ -> false)
           cols (Plan.schema child')
    in
    if identity then child' else Plan.Project { child = child'; cols }
  | Plan.Filter { child; pred } ->
    let child_needed =
      Option.map (fun s -> Attr.Set.union s (Expr.attrs pred)) needed
    in
    Plan.Filter { child = prune ~needed:child_needed child; pred }
  | Plan.Join { kind; left; right; pred } ->
    let pred_attrs =
      match pred with Some p -> Expr.attrs p | None -> Attr.Set.empty
    in
    let split side_schema =
      match needed with
      | None -> None
      | Some s ->
        Some
          (Attr.Set.union
             (Attr.Set.filter
                (fun a ->
                  List.exists (fun (x : Attr.t) -> Attr.equal x a) side_schema)
                s)
             (Attr.Set.filter
                (fun a ->
                  List.exists (fun (x : Attr.t) -> Attr.equal x a) side_schema)
                pred_attrs))
    in
    Plan.Join
      {
        kind;
        left = prune ~needed:(split (Plan.schema left)) left;
        right = prune ~needed:(split (Plan.schema right)) right;
        pred;
      }
  | Plan.Apply { kind; left; right } ->
    (* the right side may reference any left attribute; be conservative *)
    Plan.Apply { kind; left = prune ~needed:None left; right = prune ~needed:None right }
  | Plan.Aggregate { child; group_by; aggs } ->
    let aggs = List.filter (fun (c : Plan.agg_call) -> keep c.agg_out) aggs in
    let child_needed =
      List.fold_left
        (fun acc (e, _) -> Attr.Set.union acc (Expr.attrs e))
        Attr.Set.empty group_by
    in
    let child_needed =
      List.fold_left
        (fun acc (c : Plan.agg_call) ->
          match c.arg with
          | Some e -> Attr.Set.union acc (Expr.attrs e)
          | None -> acc)
        child_needed aggs
    in
    Plan.Aggregate
      { child = prune ~needed:(Some child_needed) child; group_by; aggs }
  | Plan.Distinct child -> Plan.Distinct (prune ~needed:None child)
  | Plan.Set_op { kind; all; left; right; attrs } ->
    (* positional: keep every column *)
    Plan.Set_op
      {
        kind;
        all;
        left = prune ~needed:None left;
        right = prune ~needed:None right;
        attrs;
      }
  | Plan.Sort { child; keys } ->
    let child_needed =
      Option.map
        (fun s ->
          List.fold_left
            (fun acc (e, _) -> Attr.Set.union acc (Expr.attrs e))
            s keys)
        needed
    in
    Plan.Sort { child = prune ~needed:child_needed child; keys }
  | Plan.Limit { child; limit; offset } ->
    Plan.Limit { child = prune ~needed child; limit; offset }
  | Plan.Prov _ | Plan.Baserel _ | Plan.External _ ->
    Plan.map_children (prune ~needed:None) plan

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

type config = {
  fold_constants : bool;
  push_predicates : bool;
  prune_projections : bool;
  decorrelate_applies : bool;
  use_indexes : bool;
}

let default_config =
  {
    fold_constants = true;
    push_predicates = true;
    prune_projections = true;
    decorrelate_applies = true;
    use_indexes = true;
  }

let disabled_config =
  {
    fold_constants = false;
    push_predicates = false;
    prune_projections = false;
    decorrelate_applies = false;
    use_indexes = false;
  }

(* Index selection: an equality-with-constant conjunct directly over a base
   table scan becomes a hash-index probe when the session has the index;
   other conjuncts stay as a residual filter. Runs after pushdown so single-
   table conjuncts have already descended to their scans. *)
let rec select_indexes stats (plan : Plan.t) : Plan.t =
  let plan = Plan.map_children (select_indexes stats) plan in
  match plan with
  | Plan.Filter { child = Plan.Scan { table; attrs }; pred } -> (
    let conjuncts = Expr.conjuncts pred in
    let position_of a =
      let rec go i = function
        | [] -> None
        | (x : Attr.t) :: _ when Attr.equal x a -> Some i
        | _ :: rest -> go (i + 1) rest
      in
      go 0 attrs
    in
    let usable = function
      | Expr.Binop (Expr.Eq, Expr.Attr a, (Expr.Const _ as key))
      | Expr.Binop (Expr.Eq, (Expr.Const _ as key), Expr.Attr a) -> (
        match position_of a with
        | Some pos when stats.has_index table a.Attr.name -> Some (pos, key)
        | _ -> None)
      | _ -> None
    in
    let rec pick seen = function
      | [] -> None
      | c :: rest -> (
        match usable c with
        | Some (pos, key) -> Some (pos, key, List.rev_append seen rest)
        | None -> pick (c :: seen) rest)
    in
    match pick [] conjuncts with
    | None -> plan
    | Some (key_col, key, residual) ->
      let scan = Plan.Index_scan { table; attrs; key_col; key } in
      if residual = [] then scan
      else Plan.Filter { child = scan; pred = Expr.conjoin residual })
  | p -> p

let optimize ?(config = default_config) stats plan =
  let plan = if config.fold_constants then map_exprs fold_expr plan else plan in
  let plan =
    (* drop filters that folded to TRUE *)
    if config.fold_constants then
      let rec clean p =
        let p = Plan.map_children clean p in
        match p with
        | Plan.Filter { child; pred = Expr.Const (Value.Bool true) } -> child
        | p -> p
      in
      clean plan
    else plan
  in
  let plan = if config.decorrelate_applies then decorrelate plan else plan in
  let plan = if config.push_predicates then pushdown plan else plan in
  let plan =
    if config.prune_projections then prune ~needed:None (merge_projects plan)
    else plan
  in
  let plan = if config.use_indexes then select_indexes stats plan else plan in
  plan

(* ------------------------------------------------------------------ *)
(* Parallel eligibility                                                 *)
(* ------------------------------------------------------------------ *)

(* Decide whether the executor's morsel-driven parallel mode should even be
   attempted for [plan]. This mirrors the plan shapes [Executor.Par]
   accepts — scan/filter/project spines, hash-join probes with a serial
   build side, mergeable partitioned pre-aggregation, and serial
   Sort/Limit/Project tails — plus a cardinality threshold from the
   existing [stats]: below it, pool fan-out costs more than it saves.

   This is a *decision*, not a proof: the executor re-derives eligibility
   when it compiles the fragment and silently falls back to the serial
   closures on any mismatch, so correctness never depends on the mirror
   staying in sync. *)

type par_verdict =
  | Par_ok of { par_table : string; par_est_rows : int }
      (** driving base relation of the morsel scan + its cardinality *)
  | Par_fallback of string  (** reason slug, e.g. "small", "apply", "shape" *)

let default_parallel_threshold = 2048

(* Aggregate calls whose per-morsel partial states merge bit-identically:
   no DISTINCT (needs a cross-partition seen-set) and no float Sum/Avg
   (float addition is not associative). Mirrors [Executor.Par.mergeable_agg]. *)
let par_mergeable_agg (c : Plan.agg_call) =
  (not c.distinct)
  &&
  match c.agg with
  | Plan.Count_star | Plan.Count | Plan.Min | Plan.Max | Plan.Bool_and
  | Plan.Bool_or ->
    true
  | Plan.Sum | Plan.Avg -> (
    match c.arg with
    | Some (Expr.Attr a) -> Perm_value.Dtype.equal a.Attr.ty Perm_value.Dtype.Int
    | Some (Expr.Const (Value.Int _)) -> true
    | _ -> false)

let rec par_spine (stats : stats) (plan : Plan.t) :
    (string * int, string) result =
  match plan with
  | Plan.Scan { table; _ } -> Ok (table, stats.table_rows table)
  | Plan.Baserel { child; _ } | Plan.External { child; _ }
  | Plan.Filter { child; _ } | Plan.Project { child; _ } ->
    par_spine stats child
  | Plan.Join { kind = Plan.Inner | Plan.Cross | Plan.Left | Plan.Semi | Plan.Anti;
                left; _ } ->
    (* the right side builds serially whatever its shape, so only the
       probe (left) side constrains eligibility *)
    par_spine stats left
  | Plan.Join _ -> Error "outer-join"
  | Plan.Apply _ -> Error "apply"
  | Plan.Index_scan _ -> Error "index-scan"
  | Plan.Values _ -> Error "values"
  | Plan.Aggregate _ | Plan.Distinct _ | Plan.Set_op _ | Plan.Sort _
  | Plan.Limit _ | Plan.Prov _ ->
    Error "shape"

let rec par_core (stats : stats) (plan : Plan.t) =
  match plan with
  | Plan.Aggregate { child; aggs; _ } ->
    if List.for_all par_mergeable_agg aggs then par_spine stats child
    else Error "agg"
  | Plan.Sort { child; _ } | Plan.Limit { child; _ } ->
    (* serial tails over a parallel core *)
    par_core stats child
  | Plan.Project { child; _ } -> (
    match par_spine stats plan with
    | Ok _ as ok -> ok
    | Error _ -> par_core stats child)
  | _ -> par_spine stats plan

let parallel_verdict ?(threshold = default_parallel_threshold) (stats : stats)
    (plan : Plan.t) =
  match par_core stats plan with
  | Error reason -> Par_fallback reason
  | Ok (table, rows) ->
    if rows < threshold then Par_fallback "small"
    else Par_ok { par_table = table; par_est_rows = rows }

(* Morsel sizing for the batch-at-a-time parallel path. A morsel is the
   unit of work-stealing; a batch is the unit of kernel execution. Making
   the morsel a whole multiple of [batch_rows] means workers never slice
   ragged sub-batches mid-morsel, and targeting ~4 morsels per domain
   keeps the claim counter warm without starving the tail. *)
let choose_morsel_rows ~batch_rows ~driving_rows ~domains =
  let batch_rows = max 1 batch_rows in
  let domains = max 1 domains in
  let target = max batch_rows (driving_rows / (4 * domains)) in
  let batches = (target + batch_rows - 1) / batch_rows in
  batches * batch_rows
