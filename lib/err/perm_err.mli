(** Typed error taxonomy and the cooperative cancellation token behind the
    resource governor.

    Every failure surfaced by {!Perm_engine.Engine} carries a {!kind}, so
    callers can distinguish retryable conditions (a statement killed by the
    governor, an injected fault) from fatal ones (a malformed query, a
    genuine runtime error) without parsing message strings. The legacy
    string surface is preserved through {!to_string}, which returns the
    bare message unchanged. *)

type kind =
  | Parse  (** the statement never parsed *)
  | Analyze  (** semantic analysis failed: unknown relation, type error, … *)
  | Runtime  (** data-dependent execution error: division by zero, casts *)
  | Timeout  (** killed by [statement_timeout] *)
  | Resource_exhausted  (** killed by [row_limit] or the tuple budget *)
  | Cancelled  (** cooperatively cancelled by the session *)
  | Internal  (** an invariant broke; a bug, never the user's fault *)
  | Faulted  (** a {!Perm_fault} injection point fired *)

type t = { kind : kind; msg : string }

val make : kind -> string -> t
val parse : string -> t
val analyze : string -> t
val runtime : string -> t
val timeout : string -> t
val resource : string -> t
val cancelled : string -> t
val internal : string -> t
val faulted : string -> t

val kind_label : kind -> string
(** Stable lowercase slug: ["parse"], ["timeout"], … (metric suffixes and
    the CLI error tag). *)

val to_string : t -> string
(** The bare message, unchanged — the compatibility shim for the legacy
    [(_, string) result] surface. *)

val describe : t -> string
(** ["msg"] for [Parse]/[Analyze]/[Runtime] (self-explanatory messages),
    ["kind: msg"] for governor/fault kinds, so interactive users see why a
    statement was killed. *)

val retryable : t -> bool
(** [true] for transient failures where re-running the statement (possibly
    with raised limits) can succeed: [Timeout], [Resource_exhausted],
    [Cancelled] and [Faulted]. *)

exception Cancel of kind * string
(** Raised cooperatively from {!Token.check}/{!Token.charge} inside the
    executor; mapped back to an [Error] of the same kind at the engine
    boundary. [kind] is always [Timeout], [Resource_exhausted] or
    [Cancelled]. *)

(** A cooperative cancellation token: one per top-level statement, shared
    by the serial executor and every parallel worker domain. All state is
    atomic, so a [cancel] from another domain (or a deadline noticed by one
    worker) is seen by the rest at their next morsel boundary. *)
module Token : sig
  type t

  val none : t
  (** The inert token: never cancels, never charges. The executor skips
      its per-row guard entirely when handed [none], so sessions without
      guardrails pay nothing. *)

  val create : ?timeout_ms:float -> ?tuple_budget:int -> unit -> t
  (** [timeout_ms] arms a wall-clock deadline measured from now;
      [tuple_budget] arms a cumulative tuple-flow budget (tuples counted
      across operator boundaries, the governor's memory proxy). Omitted
      limits stay unarmed. *)

  val active : t -> bool
  (** [true] when the token can ever fire (armed limits, or not [none]) —
      the executor's cue to install its per-operator guard. *)

  val cancel : t -> string -> unit
  (** Manual cooperative cancel ([Cancelled] kind); idempotent, safe from
      any domain. No effect on [none]. *)

  val cancelled : t -> (kind * string) option

  val check : t -> unit
  (** Raise {!Cancel} if the token has fired or the deadline has passed. *)

  val charge : t -> int -> unit
  (** Count [n] more tuples against the budget, then {!check}. Raises
      {!Cancel} with [Resource_exhausted] once the budget is exceeded. *)
end
