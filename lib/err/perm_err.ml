type kind =
  | Parse
  | Analyze
  | Runtime
  | Timeout
  | Resource_exhausted
  | Cancelled
  | Internal
  | Faulted

type t = { kind : kind; msg : string }

let make kind msg = { kind; msg }
let parse msg = { kind = Parse; msg }
let analyze msg = { kind = Analyze; msg }
let runtime msg = { kind = Runtime; msg }
let timeout msg = { kind = Timeout; msg }
let resource msg = { kind = Resource_exhausted; msg }
let cancelled msg = { kind = Cancelled; msg }
let internal msg = { kind = Internal; msg }
let faulted msg = { kind = Faulted; msg }

let kind_label = function
  | Parse -> "parse"
  | Analyze -> "analyze"
  | Runtime -> "runtime"
  | Timeout -> "timeout"
  | Resource_exhausted -> "resource_exhausted"
  | Cancelled -> "cancelled"
  | Internal -> "internal"
  | Faulted -> "faulted"

let to_string t = t.msg

let describe t =
  match t.kind with
  | Parse | Analyze | Runtime -> t.msg
  | _ -> Printf.sprintf "%s: %s" (kind_label t.kind) t.msg

let retryable t =
  match t.kind with
  | Timeout | Resource_exhausted | Cancelled | Faulted -> true
  | Parse | Analyze | Runtime | Internal -> false

exception Cancel of kind * string

module Token = struct
  type token = {
    fired : (kind * string) option Atomic.t;
    deadline : float;  (* absolute Unix time; infinity = unarmed *)
    timeout_ms : float;
    budget : int;  (* max_int = unarmed *)
    charged : int Atomic.t;
  }

  type t = token option

  let none : t = None

  let create ?timeout_ms ?tuple_budget () : t =
    let deadline, timeout_ms =
      match timeout_ms with
      | Some ms when ms > 0. -> (Unix.gettimeofday () +. (ms /. 1000.), ms)
      | _ -> (infinity, 0.)
    in
    let budget =
      match tuple_budget with Some n when n > 0 -> n | _ -> max_int
    in
    Some
      {
        fired = Atomic.make None;
        deadline;
        timeout_ms;
        budget;
        charged = Atomic.make 0;
      }

  let active = function
    | None -> false
    | Some tk -> tk.deadline < infinity || tk.budget < max_int

  (* First fire wins: a token cancelled for Timeout stays Timeout even if a
     slower domain later reports budget exhaustion. *)
  let fire tk kind msg =
    ignore (Atomic.compare_and_set tk.fired None (Some (kind, msg)))

  let cancel t msg =
    match t with None -> () | Some tk -> fire tk Cancelled msg

  let cancelled = function None -> None | Some tk -> Atomic.get tk.fired

  let check = function
    | None -> ()
    | Some tk -> (
        (match Atomic.get tk.fired with
        | Some _ -> ()
        | None ->
            if tk.deadline < infinity && Unix.gettimeofday () > tk.deadline
            then
              fire tk Timeout
                (Printf.sprintf "statement timeout after %.0f ms"
                   tk.timeout_ms));
        match Atomic.get tk.fired with
        | Some (kind, msg) -> raise (Cancel (kind, msg))
        | None -> ())

  let charge t n =
    match t with
    | None -> ()
    | Some tk ->
        (if tk.budget < max_int then
           let total = Atomic.fetch_and_add tk.charged n + n in
           if total > tk.budget then
             fire tk Resource_exhausted
               (Printf.sprintf "tuple budget exceeded (%d tuples, budget %d)"
                  total tk.budget));
        check t
end
