(* Durability suite: the write-ahead log end to end.

   The contract under test (DESIGN §13): whatever [Engine.execute_err]
   reported as committed is reconstructed byte-for-byte by replaying the
   log into a fresh engine — after a clean close, after a checkpoint,
   after truncating a torn tail at EVERY byte offset of the final record,
   and after an in-process "kill" (the engine is abandoned mid-fault and
   never repairs its log). Faults injected during replay surface as
   [Error] and leave the pre-replay state untouched. *)

module Engine = Perm_engine.Engine
module Wal = Perm_wal
module Value = Perm_value.Value
module Err = Perm_err
module Fault = Perm_fault
open Perm_testkit.Kit

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rm_rf dir = ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let enable_ok e dir =
  match Engine.enable_wal e dir with
  | Ok rp -> rp
  | Error err -> Alcotest.failf "enable_wal %s: %s" dir (Err.to_string err)

let recovered_dump dir =
  let e = engine () in
  let rp = enable_ok e dir in
  let dump = Engine.dump_sql e in
  Engine.close e;
  (dump, rp)

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_crc32 () =
  (* IEEE 802.3 check value for the standard 9-byte test vector *)
  Alcotest.(check int) "crc32 check value" 0xCBF43926 (Wal.crc32 "123456789");
  Alcotest.(check int) "crc32 empty" 0 (Wal.crc32 "")

let sample_frames =
  [
    Wal.Begin;
    Wal.Commit;
    Wal.Abort;
    Wal.Create "CREATE TABLE t (k INTEGER);";
    Wal.Drop "DROP TABLE t;";
    Wal.Insert ("t", []);
    Wal.Insert
      ( "t",
        [
          [| Value.Int min_int; Value.Text ""; Value.Null |];
          [| Value.Float 1.5; Value.Bool true; Value.Date 738000 |];
          [| Value.Text "quote ' and \xff\x00 bytes"; Value.Int (-1) |];
        ] );
    Wal.Delete "t";
    Wal.Replace ("t", [ [| Value.Float nan |]; [| Value.Float infinity |] ]);
    Wal.Prov ("t", [ "p_t_k"; "p_t_v" ]);
    Wal.Prov ("t", []);
  ]

let test_codec_roundtrip () =
  List.iter
    (fun f ->
      match Wal.decode_frame (Wal.encode_frame f) with
      | Some g ->
        (* structural compare treats nan = nan, unlike (=) *)
        if compare f g <> 0 then Alcotest.fail "frame did not round-trip"
      | None -> Alcotest.fail "round-trip decode returned None")
    sample_frames;
  Alcotest.(check bool) "empty payload rejected" true (Wal.decode_frame "" = None);
  Alcotest.(check bool) "bad tag rejected" true (Wal.decode_frame "\xee" = None);
  Alcotest.(check bool) "trailing byte rejected" true
    (Wal.decode_frame (Wal.encode_frame Wal.Begin ^ "x") = None);
  (* a truncated Insert payload must decode to None, not raise *)
  let enc = Wal.encode_frame (Wal.Insert ("t", [ [| Value.Int 7 |] ])) in
  for len = 0 to String.length enc - 1 do
    Alcotest.(check bool) "truncated payload rejected" true
      (Wal.decode_frame (String.sub enc 0 len) = None)
  done

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

let test_empty_log () =
  let dir = temp_dir "perm_wal_empty" in
  let e = engine () in
  let rp = enable_ok e dir in
  Alcotest.(check bool) "no snapshot" false rp.Wal.rp_snapshot;
  Alcotest.(check int) "no records" 0 rp.Wal.rp_records;
  Alcotest.(check int) "no commits" 0 rp.Wal.rp_committed;
  Alcotest.(check bool) "status present" true (Engine.wal_status e <> None);
  (match Engine.wal_status e with
  | Some ws ->
    Alcotest.(check int) "log is just the magic" (String.length Wal.magic)
      ws.Engine.ws_bytes
  | None -> ());
  Engine.close e;
  rm_rf dir

let workload_statements =
  [
    "CREATE TABLE t (k INTEGER, v TEXT);";
    "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c');";
    "CREATE INDEX t_k ON t (k);";
    "UPDATE t SET v = 'B' WHERE k = 2;";
    "DELETE FROM t WHERE k = 3;";
    "INSERT INTO t SELECT k + 10, v FROM t;";
    "CREATE VIEW big AS SELECT k FROM t WHERE k > 5;";
  ]

let test_clean_roundtrip () =
  let dir = temp_dir "perm_wal_clean" in
  let e = engine () in
  ignore (enable_ok e dir);
  exec_all e workload_statements;
  let dump = Engine.dump_sql e in
  Engine.close e;
  let recovered, rp = recovered_dump dir in
  Alcotest.(check string) "replayed state = committed state" dump recovered;
  Alcotest.(check int) "every statement committed"
    (List.length workload_statements)
    rp.Wal.rp_committed;
  Alcotest.(check int) "nothing discarded" 0 rp.Wal.rp_discarded;
  rm_rf dir

(* Truncate the log at every byte offset and replay: the recovered state
   must equal the newest statement whose commit record fully survived. *)
let test_torn_tail_every_offset () =
  let dir = temp_dir "perm_wal_torn" in
  let e = engine () in
  ignore (enable_ok e dir);
  let empty_dump = Engine.dump_sql e in
  let log_bytes () =
    match Engine.wal_status e with
    | Some ws -> ws.Engine.ws_bytes
    | None -> Alcotest.fail "wal_status"
  in
  (* (log size after the statement sealed, dump at that boundary) *)
  let boundaries =
    (log_bytes (), empty_dump)
    :: List.map
         (fun sql ->
           ignore (exec_ok e sql);
           (log_bytes (), Engine.dump_sql e))
         [
           "CREATE TABLE t (k INTEGER, v TEXT);";
           "INSERT INTO t VALUES (1, 'a'), (2, 'b');";
           "INSERT INTO t VALUES (3, 'c');";
         ]
  in
  let log = In_channel.with_open_bin (Filename.concat dir "wal.log")
      In_channel.input_all in
  Engine.close e;
  let total = String.length log in
  Alcotest.(check int) "boundary bookkeeping" total
    (fst (List.nth boundaries (List.length boundaries - 1)));
  let expected_at offset =
    (* newest boundary at or below the cut *)
    List.fold_left
      (fun acc (bytes, dump) -> if bytes <= offset then dump else acc)
      empty_dump boundaries
  in
  for offset = String.length Wal.magic to total do
    let d = temp_dir "perm_wal_cut" in
    Out_channel.with_open_bin (Filename.concat d "wal.log") (fun oc ->
        Out_channel.output_string oc (String.sub log 0 offset));
    let recovered, rp = recovered_dump d in
    Alcotest.(check string)
      (Printf.sprintf "cut at byte %d/%d" offset total)
      (expected_at offset) recovered;
    if offset = total - 1 then
      (* definitely mid-record: the torn bytes must have been chopped *)
      Alcotest.(check bool) "torn tail truncated" true
        (rp.Wal.rp_truncated_bytes > 0);
    rm_rf d
  done;
  rm_rf dir

let noop_apply =
  {
    Wal.ap_sql = (fun _ -> Ok ());
    ap_insert = (fun _ _ -> Ok ());
    ap_truncate = (fun _ -> Ok ());
    ap_replace = (fun _ _ -> Ok ());
    ap_prov = (fun _ _ -> Ok ());
  }

let test_duplicate_commit () =
  let dir = temp_dir "perm_wal_dup" in
  (match Wal.open_ ~dir ~apply:noop_apply with
  | Error msg -> Alcotest.failf "open: %s" msg
  | Ok (w, _) ->
    Wal.append w Wal.Begin;
    Wal.append w (Wal.Insert ("t", [ [| Value.Int 1 |] ]));
    Wal.append w Wal.Commit;
    Wal.append w Wal.Commit;
    (* crash-landed duplicate *)
    Wal.fsync w;
    Wal.close w);
  let inserted = ref 0 in
  let counting =
    { noop_apply with Wal.ap_insert = (fun _ rows ->
          inserted := !inserted + List.length rows;
          Ok ()) }
  in
  (match Wal.open_ ~dir ~apply:counting with
  | Error msg -> Alcotest.failf "reopen: %s" msg
  | Ok (w, rp) ->
    Alcotest.(check int) "one transaction, not two" 1 rp.Wal.rp_committed;
    Alcotest.(check int) "rows applied once" 1 !inserted;
    Alcotest.(check int) "all four records scanned" 4 rp.Wal.rp_records;
    Wal.close w);
  rm_rf dir

let test_replay_fault () =
  Fault.reset ();
  let dir = temp_dir "perm_wal_rfault" in
  let e = engine () in
  ignore (enable_ok e dir);
  exec_all e
    [ "CREATE TABLE t (k INTEGER);"; "INSERT INTO t VALUES (1), (2);" ];
  Engine.close e;
  Fault.reset ();
  Fault.set_seed 7;
  Fault.set "wal.replay" 1.0;
  let e2 = engine () in
  (match Engine.enable_wal e2 dir with
  | Ok _ -> Alcotest.fail "replay should fail under wal.replay"
  | Error err ->
    Alcotest.(check string) "fault surfaces as Faulted" "faulted"
      (Err.kind_label err.Err.kind));
  Alcotest.(check bool) "failed replay leaves no WAL installed" false
    (Engine.wal_enabled e2);
  Alcotest.(check bool) "failed replay leaves the catalog untouched" true
    (Engine.execute e2 "SELECT * FROM t;" |> Result.is_error);
  Fault.reset ();
  let rp = enable_ok e2 dir in
  Alcotest.(check int) "retry replays both statements" 2 rp.Wal.rp_committed;
  check_rows e2 "SELECT k FROM t;" [ [ "1" ]; [ "2" ] ];
  Engine.close e2;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Checkpoint                                                          *)
(* ------------------------------------------------------------------ *)

let test_checkpoint () =
  Fault.reset ();
  let dir = temp_dir "perm_wal_ckpt" in
  let e = engine () in
  ignore (enable_ok e dir);
  Perm_workload.Forum.load e;
  ignore
    (exec_ok e
       "STORE PROVENANCE SELECT text FROM messages INTO msg_prov;");
  let dump = Engine.dump_sql e in
  let prov = Engine.provenance_columns e "msg_prov" in
  Alcotest.(check bool) "provenance metadata recorded" true (prov <> None);
  (match Engine.checkpoint e with
  | Ok () -> ()
  | Error err -> Alcotest.failf "checkpoint: %s" (Err.to_string err));
  Alcotest.(check string) "checkpoint preserves state" dump (Engine.dump_sql e);
  (match Engine.wal_status e with
  | Some ws ->
    Alcotest.(check bool) "log compacted" true
      (ws.Engine.ws_bytes < 4096)
  | None -> Alcotest.fail "wal_status");
  Alcotest.(check bool) "snapshot written" true
    (Sys.file_exists (Filename.concat dir "snapshot.sql"));
  Engine.close e;
  let e2 = engine () in
  let rp = enable_ok e2 dir in
  Alcotest.(check bool) "reopen applies the snapshot" true rp.Wal.rp_snapshot;
  Alcotest.(check string) "snapshot + prov txn restore everything" dump
    (Engine.dump_sql e2);
  Alcotest.(check (option (list string))) "provenance metadata survives" prov
    (Engine.provenance_columns e2 "msg_prov");
  Engine.close e2;
  rm_rf dir

let test_checkpoint_in_txn_refused () =
  let dir = temp_dir "perm_wal_ckpt_txn" in
  let e = engine () in
  ignore (enable_ok e dir);
  exec_all e [ "CREATE TABLE t (k INTEGER);"; "BEGIN;" ];
  Alcotest.(check bool) "checkpoint inside a transaction is refused" true
    (Result.is_error (Engine.checkpoint e));
  ignore (exec_ok e "COMMIT;");
  Alcotest.(check bool) "checkpoint after commit succeeds" true
    (Result.is_ok (Engine.checkpoint e));
  Engine.close e;
  rm_rf dir

(* The review scenario: a crash inside the checkpoint protocol must
   recover to exactly the committed state — in particular a crash between
   snapshot publish and log truncation must not replay the stale log on
   top of the new snapshot (silent row duplication / duplicate CREATE). *)
let checkpoint_crash_window point =
  Fault.reset ();
  let dir = temp_dir "perm_wal_ckpt_crash" in
  let e = engine () in
  ignore (enable_ok e dir);
  exec_all e workload_statements;
  let dump = Engine.dump_sql e in
  Fault.set_seed 11;
  Fault.set point 1.0;
  (match Engine.checkpoint e with
  | Ok () -> Alcotest.failf "%s: checkpoint should fail under the fault" point
  | Error err ->
    Alcotest.(check string)
      (Printf.sprintf "%s surfaces as Faulted" point)
      "faulted"
      (Err.kind_label err.Err.kind));
  (* the crash: abandon the engine with the checkpoint half-done *)
  Fault.reset ();
  let recovered, rp = recovered_dump dir in
  Alcotest.(check string)
    (Printf.sprintf "%s: recovery is exactly the committed state" point)
    dump recovered;
  (if point = "wal.checkpoint.truncate" then begin
     (* snapshot landed, log did not shrink: replay must have skipped the
        records the snapshot already contains *)
     Alcotest.(check bool) "new snapshot applied" true rp.Wal.rp_snapshot;
     Alcotest.(check bool) "stale records skipped, not re-applied" true
       (rp.Wal.rp_skipped > 0)
   end);
  rm_rf dir

let test_checkpoint_crash_windows () =
  List.iter checkpoint_crash_window
    [ "wal.checkpoint.mark"; "wal.checkpoint.publish"; "wal.checkpoint.truncate" ]

(* Keep RUNNING through a truncate-window crash: commits appended after
   the failed checkpoint land past the epoch marker, so recovery applies
   snapshot + marker-skip + the new transactions, exactly once each. A
   later successful checkpoint (epoch + 1) must compact it all away. *)
let test_checkpoint_crash_then_continue () =
  Fault.reset ();
  let dir = temp_dir "perm_wal_ckpt_cont" in
  let e = engine () in
  ignore (enable_ok e dir);
  exec_all e workload_statements;
  Fault.set_seed 11;
  Fault.set "wal.checkpoint.truncate" 1.0;
  Alcotest.(check bool) "checkpoint fails under the fault" true
    (Result.is_error (Engine.checkpoint e));
  Fault.reset ();
  exec_all e
    [
      "INSERT INTO t VALUES (21, 'post');";
      "UPDATE t SET v = 'P' WHERE k = 21;";
    ];
  let dump2 = Engine.dump_sql e in
  let recovered, rp = recovered_dump dir in
  Alcotest.(check string) "post-crash commits survive, applied once" dump2
    recovered;
  Alcotest.(check bool) "stale prefix skipped" true (rp.Wal.rp_skipped > 0);
  (* now a clean checkpoint on the recovered lineage *)
  let e2 = engine () in
  ignore (enable_ok e2 dir);
  (match Engine.checkpoint e2 with
  | Ok () -> ()
  | Error err -> Alcotest.failf "second checkpoint: %s" (Err.to_string err));
  ignore (exec_ok e2 "INSERT INTO t VALUES (22, 'post2');");
  let dump3 = Engine.dump_sql e2 in
  let recovered3, rp3 = recovered_dump dir in
  Alcotest.(check string) "epoch advances cleanly" dump3 recovered3;
  Alcotest.(check int) "nothing left to skip" 0 rp3.Wal.rp_skipped;
  Engine.close e2;
  Engine.close e;
  rm_rf dir

let test_enable_on_existing_state () =
  let dir = temp_dir "perm_wal_adopt" in
  let e = engine () in
  exec_all e
    [ "CREATE TABLE t (k INTEGER);"; "INSERT INTO t VALUES (1), (2), (3);" ];
  let dump = Engine.dump_sql e in
  ignore (enable_ok e dir);
  (* pre-existing state must be checkpointed immediately, not lost *)
  Engine.close e;
  let recovered, rp = recovered_dump dir in
  Alcotest.(check bool) "adoption wrote a snapshot" true rp.Wal.rp_snapshot;
  Alcotest.(check string) "pre-WAL state survives recovery" dump recovered;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* Kill and recover                                                    *)
(* ------------------------------------------------------------------ *)

(* In-process twin of bin/wal_harness.ml: run a deterministic workload
   with a fault point armed, ABANDON the engine at the first injected
   error (the process-kill analogue: no repair, no checkpoint, the torn
   log stays exactly as the crash left it), then recover into a fresh
   engine and compare against the committed-prefix oracle. A wal.fsync
   fault fires after the Commit frame hit the file, so the in-flight
   statement may legitimately survive: the oracle accepts n or n+1. *)

let kill_units = 30

let kill_workload seed =
  let state = ref (seed lxor 0x5deece66d) in
  let rand k =
    state := ((!state * 2685821657736338717) + 1442695040888963) land max_int;
    !state mod k
  in
  List.init kill_units (fun i ->
      if i = 0 then [ "CREATE TABLE t (k INTEGER, v TEXT);" ]
      else
        let x = rand 1000 in
        match rand 10 with
        | 0 | 1 ->
          [
            "BEGIN;";
            Printf.sprintf "INSERT INTO t VALUES (%d, 'a%d');" x x;
            Printf.sprintf "INSERT INTO t VALUES (%d, 'b%d');" (x + 1000) x;
            "COMMIT;";
          ]
        | 2 -> [ Printf.sprintf "DELETE FROM t WHERE k %% 11 = %d;" (x mod 11) ]
        | 3 ->
          [ Printf.sprintf "UPDATE t SET v = 'u%d' WHERE k %% 7 = %d;" x (x mod 7) ]
        | _ ->
          [
            Printf.sprintf "INSERT INTO t VALUES (%d, 'r%d'), (%d, 'r%d');" x x
              (x + 100) x;
          ])

let oracle_dump seed k =
  let e = engine () in
  List.iteri
    (fun i unit_stmts -> if i < k then exec_all e unit_stmts)
    (kill_workload seed);
  let dump = Engine.dump_sql e in
  Engine.close e;
  dump

let kill_and_recover point seed =
  let dir = temp_dir "perm_wal_kill" in
  let e = engine () in
  ignore (enable_ok e dir);
  Fault.reset ();
  Fault.set_seed seed;
  Fault.set point 0.1;
  let acked = ref 0 in
  let crashed = ref false in
  (try
     List.iter
       (fun unit_stmts ->
         List.iter
           (fun sql ->
             match Engine.execute_err e sql with
             | Ok _ -> ()
             | Error err ->
               Alcotest.(check string)
                 (Printf.sprintf "%s/%d: only injected faults may fail" point seed)
                 "faulted"
                 (Err.kind_label err.Err.kind);
               crashed := true;
               raise Exit)
           unit_stmts;
         incr acked;
         (* periodic compaction keeps the checkpoint fault points in the
            schedule; a checkpoint crash is a kill like any other, and
            changes no committed state, so the oracle is unaffected *)
         if !acked mod 7 = 0 then
           match Engine.checkpoint e with
           | Ok () -> ()
           | Error err ->
             Alcotest.(check string)
               (Printf.sprintf "%s/%d: only injected faults may fail" point seed)
               "faulted"
               (Err.kind_label err.Err.kind);
             crashed := true;
             raise Exit)
       (kill_workload seed)
   with Exit -> ());
  (* the crash: never close, never repair — the engine is simply gone *)
  Fault.reset ();
  let recovered, _ = recovered_dump dir in
  let n = !acked in
  let ok =
    String.equal recovered (oracle_dump seed n)
    || (n + 1 <= kill_units && String.equal recovered (oracle_dump seed (n + 1)))
  in
  if not ok then
    Alcotest.failf "%s seed %d: recovered state matches neither %d nor %d units%s"
      point seed n (n + 1)
      (if !crashed then "" else " (no fault fired)");
  Engine.close e;
  rm_rf dir

let test_kill_and_recover () =
  List.iter
    (fun point ->
      List.iter (fun seed -> kill_and_recover point seed) [ 1; 2; 3; 4 ])
    [
      "wal.append";
      "wal.fsync";
      "engine.commit";
      "wal.checkpoint.mark";
      "wal.checkpoint.publish";
      "wal.checkpoint.truncate";
    ];
  Fault.reset ()

let () =
  Alcotest.run "wal"
    [
      ( "codec",
        [
          Alcotest.test_case "crc32 check value" `Quick test_crc32;
          Alcotest.test_case "frame round-trip and rejection" `Quick
            test_codec_roundtrip;
        ] );
      ( "replay",
        [
          Alcotest.test_case "empty log" `Quick test_empty_log;
          Alcotest.test_case "clean round-trip" `Quick test_clean_roundtrip;
          Alcotest.test_case "torn tail at every byte offset" `Slow
            test_torn_tail_every_offset;
          Alcotest.test_case "duplicate commit is idempotent" `Quick
            test_duplicate_commit;
          Alcotest.test_case "fault during replay" `Quick test_replay_fault;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "compaction round-trip" `Quick test_checkpoint;
          Alcotest.test_case "refused inside a transaction" `Quick
            test_checkpoint_in_txn_refused;
          Alcotest.test_case "enable on existing state" `Quick
            test_enable_on_existing_state;
          Alcotest.test_case "crash in every checkpoint window" `Quick
            test_checkpoint_crash_windows;
          Alcotest.test_case "crash mid-checkpoint, then keep running" `Quick
            test_checkpoint_crash_then_continue;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "kill and recover (6 points x 4 seeds)" `Slow
            test_kill_and_recover;
        ] );
    ]
