(* Property tests of the provenance rewriter at the algebra level.

   A random-plan generator builds logical plans directly (reaching operator
   nestings the SQL surface cannot easily produce — outer joins under set
   operations, aggregates over semi joins, stacked DISTINCT/LIMIT), wraps
   them in a [Prov] marker, and checks:

   (1) the rewrite succeeds and its binding list matches the computed
       sources (the structural-mirror contract of Sources/Rewriter);
   (2) the rewritten plan type-checks operationally: it executes without
       internal errors;
   (3) the rewritten schema extends the original one (same prefix ids);
   (4) projecting the provenance result onto the original columns yields
       the original result as a set;
   (5) the planner's optimizations preserve the provenance result. *)

module Plan = Perm_algebra.Plan
module Expr = Perm_algebra.Expr
module Attr = Perm_algebra.Attr
module Pretty = Perm_algebra.Pretty
module Rewriter = Perm_provenance.Rewriter
module Sources = Perm_provenance.Sources
module Planner = Perm_planner.Planner
module Executor = Perm_executor.Executor
module Value = Perm_value.Value
module Dtype = Perm_value.Dtype
module Tuple = Perm_storage.Tuple
open Perm_testkit.Kit

(* fixed base data, provided straight to the executor *)
let r_rows = [ [ i 1; s "x" ]; [ i 2; s "y" ]; [ i 2; s "y" ]; [ i 3; nl ] ]
let s_rows = [ [ i 2; s "u" ]; [ i 3; s "v" ]; [ i 3; s "w" ]; [ i 9; nl ] ]

let provider : Executor.provider =
  {
    Executor.scan_table =
      (fun table ->
        List.to_seq
          (List.map row (if table = "r" then r_rows else s_rows)));
    Executor.probe_index = (fun _ _ _ -> Seq.empty);
    Executor.scan_morsels =
      (fun table rows ->
        Executor.morsels_of_list ~morsel_rows:rows
          (List.map row (if table = "r" then r_rows else s_rows)));
    Executor.scan_batches =
      (fun table rows ->
        Executor.batches_of_list ~arity:2 ~batch_rows:rows
          (List.map row (if table = "r" then r_rows else s_rows)));
  }

let scan table =
  let cols =
    if table = "r" then [ ("a", Dtype.Int); ("b", Dtype.Text) ]
    else [ ("c", Dtype.Int); ("d", Dtype.Text) ]
  in
  Plan.Scan { table; attrs = List.map (fun (n, ty) -> Attr.fresh n ty) cols }

(* random predicate over a schema: compares its first int attr / text attr *)
let random_pred schema rnd =
  let int_attr =
    List.find_opt (fun (a : Attr.t) -> Dtype.equal a.Attr.ty Dtype.Int) schema
  in
  let text_attr =
    List.find_opt (fun (a : Attr.t) -> Dtype.equal a.Attr.ty Dtype.Text) schema
  in
  match int_attr, text_attr, QCheck.Gen.int_bound 3 rnd with
  | Some a, _, 0 -> Expr.Binop (Expr.Gt, Expr.Attr a, Expr.Const (Value.Int 1))
  | Some a, _, 1 -> Expr.Binop (Expr.Eq, Expr.Attr a, Expr.Const (Value.Int 2))
  | _, Some t, 2 -> Expr.Unop (Expr.Is_null, Expr.Attr t)
  | Some a, _, _ -> Expr.Binop (Expr.Leq, Expr.Attr a, Expr.Const (Value.Int 2))
  | None, Some t, _ -> Expr.Unop (Expr.Not, Expr.Unop (Expr.Is_null, Expr.Attr t))
  | None, None, _ -> Expr.Const (Value.Bool true)

let join_pred left right =
  let li =
    List.find_opt (fun (a : Attr.t) -> Dtype.equal a.Attr.ty Dtype.Int) (Plan.schema left)
  in
  let ri =
    List.find_opt (fun (a : Attr.t) -> Dtype.equal a.Attr.ty Dtype.Int) (Plan.schema right)
  in
  match li, ri with
  | Some l, Some r -> Some (Expr.Binop (Expr.Eq, Expr.Attr l, Expr.Attr r))
  | _ -> None

(* random plan generator; [size] bounds operator count *)
let rec gen_plan size rnd : Plan.t =
  if size <= 1 then scan (if QCheck.Gen.bool rnd then "r" else "s")
  else
    match QCheck.Gen.int_bound 8 rnd with
    | 0 ->
      let child = gen_plan (size - 1) rnd in
      Plan.Filter { child; pred = random_pred (Plan.schema child) rnd }
    | 1 ->
      (* projection keeping a shuffled subset plus one computed column *)
      let child = gen_plan (size - 1) rnd in
      let schema = Plan.schema child in
      let kept = List.filteri (fun idx _ -> idx mod 2 = 0 || List.length schema <= 2) schema in
      let kept = if kept = [] then [ List.hd schema ] else kept in
      let cols =
        List.map (fun (a : Attr.t) -> (Expr.Attr a, Attr.renamed a.Attr.name a)) kept
      in
      let extra =
        match List.find_opt (fun (a : Attr.t) -> Dtype.equal a.Attr.ty Dtype.Int) schema with
        | Some a ->
          [ (Expr.Binop (Expr.Add, Expr.Attr a, Expr.Const (Value.Int 10)),
             Attr.fresh "a10" Dtype.Int) ]
        | None -> []
      in
      Plan.Project { child; cols = cols @ extra }
    | 2 ->
      let half = size / 2 in
      let left = gen_plan half rnd and right = gen_plan half rnd in
      let kind =
        match QCheck.Gen.int_bound 4 rnd with
        | 0 -> Plan.Inner
        | 1 -> Plan.Left
        | 2 -> Plan.Full
        | 3 -> Plan.Semi
        | _ -> Plan.Anti
      in
      (match join_pred left right with
      | Some pred -> Plan.Join { kind; left; right; pred = Some pred }
      | None -> Plan.Join { kind = Plan.Cross; left; right; pred = None })
    | 3 ->
      (* aligned set operation: project both sides to (int, text) *)
      let half = size / 2 in
      let left = gen_plan half rnd and right = gen_plan half rnd in
      let norm plan =
        let schema = Plan.schema plan in
        let int_e =
          match List.find_opt (fun (a : Attr.t) -> Dtype.equal a.Attr.ty Dtype.Int) schema with
          | Some a -> Expr.Attr a
          | None -> Expr.Const (Value.Int 0)
        in
        let text_e =
          match List.find_opt (fun (a : Attr.t) -> Dtype.equal a.Attr.ty Dtype.Text) schema with
          | Some a -> Expr.Attr a
          | None -> Expr.Const (Value.Text "-")
        in
        Plan.Project
          {
            child = plan;
            cols = [ (int_e, Attr.fresh "n" Dtype.Int); (text_e, Attr.fresh "t" Dtype.Text) ];
          }
      in
      let kind =
        match QCheck.Gen.int_bound 2 rnd with
        | 0 -> Plan.Union
        | 1 -> Plan.Intersect
        | _ -> Plan.Except
      in
      Plan.Set_op
        {
          kind;
          all = QCheck.Gen.bool rnd;
          left = norm left;
          right = norm right;
          attrs = [ Attr.fresh "n" Dtype.Int; Attr.fresh "t" Dtype.Text ];
        }
    | 4 ->
      let child = gen_plan (size - 1) rnd in
      let schema = Plan.schema child in
      let group =
        match List.find_opt (fun (a : Attr.t) -> Dtype.equal a.Attr.ty Dtype.Text) schema with
        | Some a -> [ (Expr.Attr a, Attr.fresh "g" Dtype.Text) ]
        | None -> [ (Expr.Attr (List.hd schema), Attr.renamed "g" (List.hd schema)) ]
      in
      Plan.Aggregate
        {
          child;
          group_by = group;
          aggs =
            [ { Plan.agg = Plan.Count_star; distinct = false; arg = None;
                agg_out = Attr.fresh "cnt" Dtype.Int } ];
        }
    | 5 -> Plan.Distinct (gen_plan (size - 1) rnd)
    | 6 ->
      let child = gen_plan (size - 1) rnd in
      Plan.Limit { child; limit = Some (1 + QCheck.Gen.int_bound 4 rnd); offset = 0 }
    | 7 ->
      let child = gen_plan (size - 1) rnd in
      let keys = [ (Expr.Attr (List.hd (Plan.schema child)), Plan.Asc) ] in
      Plan.Sort { child; keys }
    | _ -> scan "r"

let gen_marked =
  QCheck.Gen.(
    sized_size (int_range 2 7) (fun size rnd ->
        let plan = gen_plan size rnd in
        let sources = Sources.prov_sources plan in
        Plan.Prov { child = plan; semantics = Plan.Influence; sources }))

let arb_marked =
  QCheck.make
    ~print:(fun p -> Pretty.plan_to_string ~show_attrs:false p)
    gen_marked

let run_plan plan =
  match Executor.run ~provider plan with
  | Ok rows -> rows
  | Error msg ->
    QCheck.Test.fail_reportf "execution failed: %s\n%s" msg
      (Pretty.plan_to_string plan)

let rewrite_ok plan =
  try Rewriter.rewrite plan
  with Rewriter.Rewrite_error msg ->
    QCheck.Test.fail_reportf "rewrite failed: %s\n%s" msg
      (Pretty.plan_to_string plan)

let strings rows =
  List.map (fun r -> Array.to_list (Array.map Value.to_string r)) rows

let prop_rewrite_and_execute marked =
  let rewritten, _ = rewrite_ok marked in
  ignore (run_plan rewritten);
  true

let prop_schema_extends marked =
  let child_schema =
    match marked with
    | Plan.Prov { child; _ } -> Plan.schema child
    | _ -> assert false
  in
  let rewritten, _ = rewrite_ok marked in
  let out = Plan.schema rewritten in
  List.for_all2
    (fun (a : Attr.t) (b : Attr.t) -> Attr.equal a b)
    child_schema
    (List.filteri (fun idx _ -> idx < List.length child_schema) out)
  && List.length out
     = List.length child_schema
       + (match marked with
         | Plan.Prov { sources; _ } -> List.length sources
         | _ -> 0)

let prop_projection_invariant marked =
  let child =
    match marked with Plan.Prov { child; _ } -> child | _ -> assert false
  in
  let arity = List.length (Plan.schema child) in
  let orig = List.sort_uniq compare (strings (run_plan child)) in
  let rewritten, _ = rewrite_ok marked in
  let prov = strings (run_plan rewritten) in
  let projected =
    List.sort_uniq compare
      (List.map (fun r -> List.filteri (fun idx _ -> idx < arity) r) prov)
  in
  if orig <> projected then
    QCheck.Test.fail_reportf "projection mismatch\norig: %s\nprov: %s\nplan:\n%s"
      (String.concat " | " (List.map (String.concat ",") orig))
      (String.concat " | " (List.map (String.concat ",") projected))
      (Pretty.plan_to_string marked)
  else true

let prop_optimizer_preserves marked =
  let rewritten, _ = rewrite_ok marked in
  let plain = List.sort compare (strings (run_plan rewritten)) in
  let optimized = Planner.optimize Planner.no_stats rewritten in
  let opt = List.sort compare (strings (run_plan optimized)) in
  if plain <> opt then
    QCheck.Test.fail_reportf "optimizer changed provenance result\nplan:\n%s"
      (Pretty.plan_to_string marked)
  else true

let prop_strategies_agree marked =
  let run config =
    let rewritten, _ =
      try Rewriter.rewrite ~config marked
      with Rewriter.Rewrite_error msg -> QCheck.Test.fail_reportf "rewrite failed: %s" msg
    in
    List.sort compare (strings (run_plan rewritten))
  in
  run { Rewriter.agg_mode = Rewriter.Fixed Rewriter.Agg_join }
  = run { Rewriter.agg_mode = Rewriter.Fixed Rewriter.Agg_lateral }

let t name count prop = qcheck (QCheck.Test.make ~name ~count arb_marked prop)

let () =
  Alcotest.run "rewriter-prop"
    [
      ( "random-plans",
        [
          t "rewrite succeeds and executes" 300 prop_rewrite_and_execute;
          t "rewritten schema = original ++ sources" 300 prop_schema_extends;
          t "projection onto original columns" 300 prop_projection_invariant;
          t "optimizer preserves provenance results" 200 prop_optimizer_preserves;
          t "aggregation strategies agree" 200 prop_strategies_agree;
        ] );
    ]
