(* Observability tests: the metrics registry (bucketing, quantiles,
   deterministic dumps), the span tracer (nesting, frozen durations), and
   EXPLAIN ANALYZE / per-operator instrumentation through the engine. *)

module Metrics = Perm_obs.Metrics
module Trace = Perm_obs.Trace
module Json = Perm_obs.Json
module Engine = Perm_engine.Engine
open Perm_testkit.Kit

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let metrics_tests =
  [
    case "counters accumulate; unknown counters read 0" (fun () ->
        let m = Metrics.create () in
        Metrics.incr m "a";
        Metrics.incr m ~by:41 "a";
        Alcotest.(check int) "a" 42 (Metrics.counter m "a");
        Alcotest.(check int) "never touched" 0 (Metrics.counter m "nope"));
    case "gauges keep the last value" (fun () ->
        let m = Metrics.create () in
        Metrics.set_gauge m "g" 1.5;
        Metrics.set_gauge m "g" 2.5;
        Alcotest.(check (option (float 0.))) "" (Some 2.5) (Metrics.gauge m "g"));
    case "histogram bucketing, min/max/sum and quantiles" (fun () ->
        let m = Metrics.create () in
        let bounds = [| 1.0; 10.0; 100.0 |] in
        List.iter (Metrics.observe ~bounds m "h") [ 0.5; 5.0; 50.0; 500.0 ];
        match Metrics.histogram m "h" with
        | None -> Alcotest.fail "histogram missing"
        | Some h ->
          Alcotest.(check (array int)) "one observation per bucket + overflow"
            [| 1; 1; 1; 1 |] h.Metrics.buckets;
          Alcotest.(check int) "count" 4 h.Metrics.h_count;
          Alcotest.(check (float 1e-9)) "sum" 555.5 h.Metrics.h_sum;
          Alcotest.(check (float 1e-9)) "min" 0.5 h.Metrics.h_min;
          Alcotest.(check (float 1e-9)) "max" 500.0 h.Metrics.h_max;
          (* quantiles report the covering bucket's upper bound ... *)
          Alcotest.(check (float 1e-9)) "p50" 10.0 (Metrics.quantile h 0.50);
          (* ... clamped to the observed maximum in the overflow bucket *)
          Alcotest.(check (float 1e-9)) "p95" 500.0 (Metrics.quantile h 0.95));
    case "quantile edge cases: empty, single, q=0/1, overflow clamp" (fun () ->
        let m = Metrics.create () in
        let bounds = [| 1.0; 10.0 |] in
        (* a declared-but-never-observed histogram: every quantile is nan *)
        Metrics.declare_histogram ~bounds m "h0";
        (match Metrics.histogram m "h0" with
        | None -> Alcotest.fail "declared histogram missing"
        | Some h ->
          Alcotest.(check bool) "empty -> nan" true
            (Float.is_nan (Metrics.quantile h 0.5));
          Alcotest.(check bool) "empty q=0 -> nan" true
            (Float.is_nan (Metrics.quantile h 0.0)));
        (* single observation: every quantile collapses to that value
           (bucket bound 10.0 clamped to the observed max 5.0) *)
        Metrics.observe ~bounds m "h1" 5.0;
        (match Metrics.histogram m "h1" with
        | None -> Alcotest.fail "histogram missing"
        | Some h ->
          Alcotest.(check (float 1e-9)) "single q=0" 5.0 (Metrics.quantile h 0.0);
          Alcotest.(check (float 1e-9)) "single p50" 5.0 (Metrics.quantile h 0.5);
          Alcotest.(check (float 1e-9)) "single q=1" 5.0
            (Metrics.quantile h 1.0));
        (* all observations above the last bound land in the overflow
           bucket, whose bound is +inf: clamped to the observed max *)
        Metrics.observe ~bounds m "h2" 50.0;
        Metrics.observe ~bounds m "h2" 70.0;
        (match Metrics.histogram m "h2" with
        | None -> Alcotest.fail "histogram missing"
        | Some h ->
          Alcotest.(check (float 1e-9)) "overflow p50 clamps to max" 70.0
            (Metrics.quantile h 0.5);
          Alcotest.(check (float 1e-9)) "overflow q=1 clamps to max" 70.0
            (Metrics.quantile h 1.0)));
    case "kind mismatch raises Invalid_argument" (fun () ->
        let m = Metrics.create () in
        Metrics.incr m "x";
        Alcotest.check_raises "observe on a counter"
          (Invalid_argument "metric \"x\" is a counter, not a histogram")
          (fun () -> Metrics.observe m "x" 1.0));
    case "dump_text is sorted and insertion-order independent" (fun () ->
        let m1 = Metrics.create () and m2 = Metrics.create () in
        Metrics.incr m1 "z.count";
        Metrics.set_gauge m1 "a.gauge" 3.0;
        Metrics.observe ~bounds:[| 1.0 |] m1 "m.lat" 0.5;
        (* same metrics, reverse creation order *)
        Metrics.observe ~bounds:[| 1.0 |] m2 "m.lat" 0.5;
        Metrics.set_gauge m2 "a.gauge" 3.0;
        Metrics.incr m2 "z.count";
        Alcotest.(check string) "identical dumps"
          (Metrics.dump_text m1) (Metrics.dump_text m2);
        Alcotest.(check (list string)) "names sorted"
          [ "a.gauge"; "m.lat"; "z.count" ] (Metrics.names m1);
        Alcotest.(check string) "identical JSON"
          (Json.to_string (Metrics.to_json m1))
          (Json.to_string (Metrics.to_json m2)));
    case "reset empties the registry" (fun () ->
        let m = Metrics.create () in
        Metrics.incr m "a";
        Metrics.reset m;
        Alcotest.(check (list string)) "" [] (Metrics.names m));
  ]

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_tests =
  [
    case "compact rendering and string escaping" (fun () ->
        let doc =
          Json.Obj
            [
              ("s", Json.String "a\"b\n");
              ("n", Json.Int 3);
              ("f", Json.Float 1.5);
              ("l", Json.List [ Json.Bool true; Json.Null ]);
            ]
        in
        Alcotest.(check string) ""
          "{\"s\": \"a\\\"b\\n\", \"n\": 3, \"f\": 1.5, \"l\": [true, null]}"
          (Json.to_string doc));
    case "UTF-16 surrogate pairs decode to 4-byte UTF-8 and round-trip"
      (fun () ->
        (* U+1F600 GRINNING FACE as an escaped surrogate pair *)
        match Json.parse {|{"s": "\ud83d\ude00"}|} with
        | Error msg -> Alcotest.failf "parse failed: %s" msg
        | Ok doc ->
          let s =
            match Option.bind (Json.member "s" doc) Json.to_string_opt with
            | Some s -> s
            | None -> Alcotest.fail "no string member"
          in
          Alcotest.(check string) "UTF-8 bytes of U+1F600"
            "\xf0\x9f\x98\x80" s;
          (* the decoded bytes survive a render -> parse round trip *)
          let again =
            match Json.parse (Json.to_string doc) with
            | Ok d -> Option.bind (Json.member "s" d) Json.to_string_opt
            | Error msg -> Alcotest.failf "re-parse failed: %s" msg
          in
          Alcotest.(check (option string)) "round trip" (Some s) again);
    case "lone surrogates do not crash the parser" (fun () ->
        (* a high surrogate with no low half: decoded as a replacement,
           never an exception *)
        match Json.parse {|{"s": "\ud83d!"}|} with
        | Ok _ -> ()
        | Error _ -> () (* rejecting is acceptable too — just no crash *));
    case "pretty rendering is valid-shaped and newline-terminated" (fun () ->
        let s = Json.to_pretty_string (Json.Obj [ ("k", Json.Int 1) ]) in
        Alcotest.(check bool) "ends with newline" true
          (String.length s > 0 && s.[String.length s - 1] = '\n');
        Alcotest.(check bool) "indented" true (contains s "  \"k\": 1"));
  ]

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)
(* ------------------------------------------------------------------ *)

let trace_tests =
  [
    case "children nest in start order; root covers them" (fun () ->
        let root = Trace.start "root" in
        let x = Trace.timed root "a" (fun () -> 41 + 1) in
        Alcotest.(check int) "timed returns the result" 42 x;
        let b = Trace.child root "b" in
        Trace.finish b;
        Trace.finish root;
        Alcotest.(check (list string)) "start order" [ "a"; "b" ]
          (List.map Trace.name (Trace.children root));
        List.iter
          (fun sp ->
            Alcotest.(check bool) (Trace.name sp ^ " within root") true
              (Trace.duration_ms root >= Trace.duration_ms sp))
          (Trace.children root));
    case "finish freezes the duration (idempotent)" (fun () ->
        let sp = Trace.start "s" in
        Trace.finish sp;
        let d1 = Trace.duration_ms sp in
        (* burn a little time; a frozen span must not keep counting *)
        ignore (Sys.opaque_identity (Array.init 100_000 (fun i -> i * i)));
        Trace.finish sp;
        Alcotest.(check (float 0.)) "" d1 (Trace.duration_ms sp));
    case "timed closes the child when f raises" (fun () ->
        let root = Trace.start "root" in
        (try Trace.timed root "boom" (fun () -> failwith "x")
         with Failure _ -> ());
        match Trace.find root "boom" with
        | None -> Alcotest.fail "child not attached"
        | Some sp ->
          let d1 = Trace.duration_ms sp in
          ignore (Sys.opaque_identity (Array.init 100_000 (fun i -> i * i)));
          Alcotest.(check (float 0.)) "closed" d1 (Trace.duration_ms sp));
    case "annotate and to_string / to_json surface the tree" (fun () ->
        let root = Trace.start "statement" in
        Trace.annotate root "sql" "SELECT 1";
        Trace.timed root "execute" (fun () -> ());
        Trace.finish root;
        Alcotest.(check (list (pair string string))) "attrs"
          [ ("sql", "SELECT 1") ] (Trace.attrs root);
        let txt = Trace.to_string root in
        Alcotest.(check bool) "tree text has both spans" true
          (contains txt "statement" && contains txt "  execute");
        let json = Json.to_string (Trace.to_json root) in
        Alcotest.(check bool) "json carries the attribute" true
          (contains json "\"sql\": \"SELECT 1\""));
  ]

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE and engine instrumentation                          *)
(* ------------------------------------------------------------------ *)

let three_table_engine () =
  let e = engine () in
  exec_all e
    [
      "CREATE TABLE t1 (a int)";
      "INSERT INTO t1 VALUES (1), (2), (3)";
      "CREATE TABLE t2 (a int)";
      "INSERT INTO t2 VALUES (2), (3), (4)";
      "CREATE TABLE t3 (a int)";
      "INSERT INTO t3 VALUES (3), (4), (5)";
    ];
  e

let join3 =
  "SELECT t1.a FROM t1 JOIN t2 ON t1.a = t2.a JOIN t3 ON t2.a = t3.a"

let engine_tests =
  [
    case "EXPLAIN ANALYZE reports actual rows on a 3-table join" (fun () ->
        let e = three_table_engine () in
        match Engine.explain_analyze e join3 with
        | Error msg -> Alcotest.fail msg
        | Ok ea ->
          (* only a=3 survives both joins *)
          Alcotest.(check int) "result rows" 1 ea.Engine.ea_rows;
          Alcotest.(check bool) "root annotated with est and actual rows" true
            (contains ea.Engine.ea_tree "(est="
            && contains ea.Engine.ea_tree "act=1");
          List.iter
            (fun scan ->
              Alcotest.(check bool) (scan ^ " annotated with est/act/self") true
                (contains ea.Engine.ea_tree
                   (scan ^ "  (est=3 act=3 loops=1 self=")))
            [ "Scan(t1)"; "Scan(t2)"; "Scan(t3)" ];
          Alcotest.(check (list string)) "phases in pipeline order"
            [ "analyze"; "rewrite"; "optimize"; "execute" ]
            (List.map fst ea.Engine.ea_phases);
          Alcotest.(check bool) "total covers the execute phase" true
            (ea.Engine.ea_total_ms >= List.assoc "execute" ea.Engine.ea_phases));
    case "EXPLAIN ANALYZE as a statement yields the Analyzed outcome" (fun () ->
        let e = three_table_engine () in
        match exec_ok e ("EXPLAIN ANALYZE " ^ join3) with
        | Engine.Analyzed ea -> Alcotest.(check int) "" 1 ea.Engine.ea_rows
        | _ -> Alcotest.fail "expected Analyzed");
    case "EXPLAIN ANALYZE populates per-operator counters" (fun () ->
        let e = three_table_engine () in
        (match Engine.explain_analyze e join3 with
        | Ok _ -> ()
        | Error msg -> Alcotest.fail msg);
        let m = Engine.metrics e in
        Alcotest.(check int) "scan rows: 3 tables x 3 rows" 9
          (Metrics.counter m "executor.rows.scan");
        Alcotest.(check bool) "join invocations recorded" true
          (Metrics.counter m "executor.invocations.join" >= 1));
    case "uninstrumented statements record no operator stats" (fun () ->
        let e = three_table_engine () in
        ignore (query_ok e join3);
        let m = Engine.metrics e in
        Alcotest.(check int) "no per-operator rows" 0
          (Metrics.counter m "executor.rows.scan");
        Alcotest.(check bool) "but statements are counted" true
          (Metrics.counter m "engine.statements" > 0));
    case "set_instrumentation turns operator stats on per session" (fun () ->
        let e = three_table_engine () in
        Alcotest.(check bool) "off by default" false (Engine.instrumentation e);
        Engine.set_instrumentation e true;
        ignore (query_ok e join3);
        Alcotest.(check int) "scan rows recorded" 9
          (Metrics.counter (Engine.metrics e) "executor.rows.scan"));
    case "every statement leaves a phase trace" (fun () ->
        let e = three_table_engine () in
        ignore (query_ok e join3);
        match Engine.last_trace e with
        | None -> Alcotest.fail "no trace"
        | Some root ->
          Alcotest.(check string) "root" "statement" (Trace.name root);
          Alcotest.(check (list string)) "phases"
            [ "analyze"; "rewrite"; "optimize"; "execute" ]
            (List.map Trace.name (Trace.children root));
          Alcotest.(check (option string)) "sql attribute" (Some join3)
            (List.assoc_opt "sql" (Trace.attrs root)));
    case "provenance query counts rewrite rules and strategies" (fun () ->
        let e = three_table_engine () in
        ignore
          (query_ok e "SELECT PROVENANCE count(*), a FROM t1 GROUP BY a");
        let m = Engine.metrics e in
        Alcotest.(check int) "heuristic picks the join strategy" 1
          (Metrics.counter m "rewriter.strategy.join");
        Alcotest.(check int) "aggregate_join rule fired" 1
          (Metrics.counter m "rewriter.rule.aggregate_join");
        Alcotest.(check int) "base relation rule fired" 1
          (Metrics.counter m "rewriter.rule.base_relation"));
  ]

let () =
  Alcotest.run "obs"
    [
      ("metrics", metrics_tests);
      ("json", json_tests);
      ("trace", trace_tests);
      ("engine", engine_tests);
    ]
