(* Vectorized batch-at-a-time execution.

   The row-at-a-time closures are the correctness oracle: with
   vectorization on, every query must return byte-identical rows in
   identical order — across adversarial batch sizes (1, 7, and the
   default), on the serial path and on the parallel path at the
   PERM_PARALLEL domain count (CI runs 1, 2 and 4), including the
   provenance rewrites (influence + copy, lazy and eager). *)

module Engine = Perm_engine.Engine
module Executor = Perm_executor.Executor
module Metrics = Perm_obs.Metrics
module Value = Perm_value.Value
open Perm_testkit.Kit

let domains =
  match Sys.getenv_opt "PERM_PARALLEL" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 2)
  | None -> 2

(* Batch sizes under test: degenerate (1), prime and misaligned with every
   morsel boundary (7), and the shipped default. *)
let batch_sizes = [ 1; 7; Executor.default_batch_rows ]

let ordered_rows e sql = strings_of_rows (query_ok e sql).Engine.rows

(* Oracle: the row path, with parallelism off. *)
let row_oracle e sql =
  Engine.set_parallel e Engine.Par_off;
  Engine.set_vectorized e false;
  let rows = ordered_rows e sql in
  Engine.set_vectorized e true;
  rows

let check_against_oracle e sql =
  let oracle = row_oracle e sql in
  List.iter
    (fun bn ->
      Engine.set_batch_rows e bn;
      (* serial batch path *)
      Engine.set_parallel e Engine.Par_off;
      Alcotest.(check rows_testable)
        (Printf.sprintf "%s [row = batch, batch_rows=%d]" sql bn)
        oracle (ordered_rows e sql);
      (* parallel batch path: tiny morsels so several tasks exist *)
      Engine.set_parallel e (Engine.Par_domains domains);
      Engine.set_parallel_threshold e 1;
      Engine.set_morsel_rows e 16;
      Alcotest.(check rows_testable)
        (Printf.sprintf "%s [row = parallel batch, batch_rows=%d]" sql bn)
        oracle (ordered_rows e sql))
    batch_sizes;
  Engine.set_parallel e Engine.Par_off;
  Engine.set_batch_rows e Executor.default_batch_rows

let forum_queries =
  [
    "SELECT mid, text FROM messages WHERE mid >= 0";
    "SELECT * FROM users";
    "SELECT mid, mid % 2, upper(text) FROM messages WHERE mid % 2 = 0";
    "SELECT m.text, u.name FROM messages m, users u WHERE m.uid = u.uid";
    "SELECT uid, count(*) FROM messages GROUP BY uid";
    "SELECT count(*), min(mid), max(mid) FROM messages";
    "SELECT mid, text FROM messages ORDER BY mid DESC LIMIT 7";
    "SELECT DISTINCT uid FROM messages";
    Perm_workload.Forum.q1;
    Perm_workload.Forum.q3;
    (* provenance rewrites: influence through union/aggregate, and the
       copy-contribution variant *)
    Perm_workload.Forum.q1_provenance;
    "SELECT PROVENANCE m.text FROM messages m WHERE m.mid > 2";
    "SELECT PROVENANCE uid, count(*) FROM messages GROUP BY uid";
    "SELECT PROVENANCE ON CONTRIBUTION (COPY) mid, text FROM messages \
     WHERE mid > 1";
  ]

let suite_identity =
  [
    case "forum figure-1 data: row oracle = batch paths at 1/7/default"
      (fun () ->
        let e = forum_engine () in
        List.iter (check_against_oracle e) forum_queries;
        Engine.close e);
    case "scaled forum: row oracle = batch paths, batch path engaged"
      (fun () ->
        let e = engine () in
        Perm_workload.Forum.load_scaled e ~messages:300 ~users:40 ();
        List.iter (check_against_oracle e) forum_queries;
        Alcotest.(check bool) "parallel path engaged" true
          (Metrics.counter (Engine.metrics e) "executor.par.queries" > 0);
        Engine.close e);
    case "star workload: row oracle = batch paths incl. provenance"
      (fun () ->
        let e = engine () in
        Perm_workload.Star.load e ~scale:120 ();
        List.iter
          (fun (_, q, qp) ->
            check_against_oracle e q;
            check_against_oracle e qp)
          Perm_workload.Star.queries;
        Engine.close e);
    case "eager provenance stored through the batch path = lazy rows"
      (fun () ->
        let e = forum_engine () in
        (* lazy answer on the row oracle *)
        let lazy_rows =
          row_oracle e "SELECT PROVENANCE mid, text FROM messages"
        in
        Engine.set_batch_rows e 7;
        ignore
          (exec_ok e
             "STORE PROVENANCE SELECT mid, text FROM messages INTO vec_eager");
        let eager =
          List.sort compare (ordered_rows e "SELECT * FROM vec_eager")
        in
        Alcotest.(check rows_testable)
          "eager store = lazy provenance" (List.sort compare lazy_rows) eager;
        Engine.close e);
  ]

let suite_dispatch =
  [
    case "batch_eligible declines Apply and Prov shapes" (fun () ->
        let e = forum_engine () in
        (* a surviving correlated Apply must fall back to the row path and
           still answer correctly *)
        let sql =
          "SELECT u.name FROM users u WHERE EXISTS (SELECT 1 FROM messages \
           m WHERE m.uid < u.uid)"
        in
        check_against_oracle e sql;
        Engine.close e);
    case "\\set vectorized off pins the row path; plan hash sees the mode"
      (fun () ->
        let e = forum_engine () in
        let h = Engine.history e in
        Perm_obs.History.set_capacity h 8;
        Perm_obs.History.set_cadence h 0.;
        let sql = "SELECT mid FROM messages" in
        let last_hash () =
          match List.rev (Perm_obs.History.executions h) with
          | r :: _ -> r.Perm_obs.History.ex_plan_hash
          | [] -> Alcotest.fail "no execution recorded"
        in
        Engine.set_vectorized e true;
        ignore (query_ok e sql);
        let vec_hash = last_hash () in
        Engine.set_vectorized e false;
        ignore (query_ok e sql);
        let row_hash = last_hash () in
        Alcotest.(check bool) "mode is part of the plan hash" true
          (vec_hash <> row_hash);
        Engine.close e);
    case "batch_rows floor is 1" (fun () ->
        let e = forum_engine () in
        Engine.set_batch_rows e 0;
        Alcotest.(check int) "clamped" 1 (Engine.batch_rows e);
        ignore (query_ok e "SELECT mid FROM messages");
        Engine.close e);
  ]

let suite_profiler =
  [
    case "instrumented batch run reports exact peak bytes" (fun () ->
        let e = engine () in
        Perm_workload.Forum.load_scaled e ~messages:300 ~users:40 ();
        Engine.set_instrumentation e true;
        let sql = "SELECT mid, text FROM messages WHERE mid % 2 = 0" in
        let serial = row_oracle e sql in
        Alcotest.(check rows_testable) "instrumented batch = row oracle"
          serial (ordered_rows e sql);
        let prof = Engine.plan_profile e in
        Alcotest.(check bool) "profile populated" true (prof <> []);
        List.iter
          (fun pn ->
            Alcotest.(check bool)
              (pn.Perm_obs.Profile.pn_operator ^ " has measured bytes")
              true
              (pn.Perm_obs.Profile.pn_peak_bytes > 0))
          prof;
        Engine.close e);
  ]

let suite_morsel_sizing =
  [
    case "planner morsel choice is a whole multiple of batch_rows" (fun () ->
        List.iter
          (fun (batch_rows, driving_rows, domains) ->
            let m =
              Perm_planner.Planner.choose_morsel_rows ~batch_rows
                ~driving_rows ~domains
            in
            Alcotest.(check bool)
              (Printf.sprintf "b=%d rows=%d d=%d -> %d" batch_rows
                 driving_rows domains m)
              true
              (m >= batch_rows && m mod batch_rows = 0))
          [
            (1024, 100_000, 4);
            (1024, 10, 1);
            (7, 1_000, 2);
            (256, 1_000_000, 8);
            (4096, 4096, 1);
          ]);
    case "auto morsels (morsel_rows 0) keep determinism" (fun () ->
        let e = engine () in
        Perm_workload.Forum.load_scaled e ~messages:500 ~users:40 ();
        let sql = "SELECT uid, count(*) FROM messages GROUP BY uid" in
        let oracle = row_oracle e sql in
        Engine.set_morsel_rows e 0;
        Engine.set_parallel e (Engine.Par_domains domains);
        Engine.set_parallel_threshold e 1;
        Alcotest.(check rows_testable) "auto-sized parallel = oracle" oracle
          (ordered_rows e sql);
        Engine.close e);
  ]

let () =
  Alcotest.run "vectorized"
    [
      ("identity", suite_identity);
      ("dispatch", suite_dispatch);
      ("profiler", suite_profiler);
      ("morsel-sizing", suite_morsel_sizing);
    ]
