(* Provenance rewriter tests: one behavioural test per rewrite rule
   (paper §2.2), the source/naming computation, the copy-semantics
   analysis, and agreement between the aggregation strategies. *)

module Plan = Perm_algebra.Plan
module Attr = Perm_algebra.Attr
module Engine = Perm_engine.Engine
module Rewriter = Perm_provenance.Rewriter
module Sources = Perm_provenance.Sources
open Perm_testkit.Kit

let setup () =
  let e = engine () in
  exec_all e
    [
      "CREATE TABLE r (a int, b text)";
      "INSERT INTO r VALUES (1, 'x'), (2, 'y'), (2, 'y'), (3, null)";
      "CREATE TABLE s (a int, c int)";
      "INSERT INTO s VALUES (2, 20), (3, 30), (3, 33), (9, 90)";
    ];
  e

(* Projecting the provenance result onto the original columns must give back
   the original rows for queries whose rewrite does not replicate (pure
   SPJ); for replicating rewrites, the original rows must equal the DISTINCT
   projection. *)
let originals rows arity =
  List.map (fun r -> List.filteri (fun idx _ -> idx < arity) r) rows

let rule_tests =
  [
    case "base relation: attributes duplicated" (fun () ->
        check_rows (setup ()) "SELECT PROVENANCE a, b FROM r WHERE a = 1"
          [ [ "1"; "x"; "1"; "x" ] ]);
    case "projection keeps provenance" (fun () ->
        check_rows (setup ()) "SELECT PROVENANCE b FROM r WHERE a = 3"
          [ [ "null"; "3"; "null" ] ]);
    case "selection commutes with rewrite" (fun () ->
        check_count (setup ()) "SELECT PROVENANCE a FROM r WHERE a = 2" 2);
    case "inner join concatenates provenance" (fun () ->
        check_rows (setup ())
          "SELECT PROVENANCE r.a FROM r JOIN s ON r.a = s.a WHERE s.c = 20"
          [ [ "2"; "2"; "y"; "2"; "20" ]; [ "2"; "2"; "y"; "2"; "20" ] ]);
    case "left join NULL-pads right provenance" (fun () ->
        check_rows (setup ())
          "SELECT PROVENANCE r.a FROM r LEFT JOIN s ON r.a = s.a WHERE r.a = 1"
          [ [ "1"; "1"; "x"; "null"; "null" ] ]);
    case "full join pads both sides" (fun () ->
        let rs = query_ok (setup ())
            "SELECT PROVENANCE r.a, s.a FROM r FULL JOIN s ON r.a = s.a" in
        (* the s-only row a=9 must appear with NULL r-provenance *)
        let rows = strings_of_rows rs.Engine.rows in
        Alcotest.(check bool) "" true
          (List.exists
             (fun row -> List.nth row 1 = "9" && List.nth row 2 = "null")
             rows));
    case "aggregation: each group joined with its witnesses" (fun () ->
        check_rows (setup ())
          "SELECT PROVENANCE count(*) AS c, a FROM s GROUP BY a"
          [
            [ "1"; "2"; "2"; "20" ];
            [ "2"; "3"; "3"; "30" ];
            [ "2"; "3"; "3"; "33" ];
            [ "1"; "9"; "9"; "90" ];
          ]);
    case "global aggregate over empty input keeps its row, NULL provenance" (fun () ->
        check_rows (setup ())
          "SELECT PROVENANCE count(*) FROM r WHERE a > 100"
          [ [ "0"; "null"; "null" ] ]);
    case "group by null groups rejoin null-safely" (fun () ->
        check_rows (setup ())
          "SELECT PROVENANCE count(*), b FROM r WHERE a = 3 GROUP BY b"
          [ [ "1"; "null"; "3"; "null" ] ]);
    case "distinct: one row per duplicate witness" (fun () ->
        check_rows (setup ()) "SELECT PROVENANCE DISTINCT a FROM r WHERE a = 2"
          [ [ "2"; "2"; "y" ]; [ "2"; "2"; "y" ] ]);
    case "union all pads the other branch" (fun () ->
        check_rows (setup ())
          "SELECT PROVENANCE a FROM r WHERE a = 1 UNION ALL SELECT a FROM s WHERE a = 9"
          [
            [ "1"; "1"; "x"; "null"; "null" ];
            [ "9"; "null"; "null"; "9"; "90" ];
          ]);
    case "union distinct rejoins each result tuple with all witnesses" (fun () ->
        (* a=2 appears twice in r and once in s: 3 provenance rows for 1 result *)
        check_count (setup ())
          "SELECT PROVENANCE a FROM r WHERE a = 2 UNION SELECT a FROM s WHERE a = 2"
          3);
    case "intersect joins witnesses from both branches" (fun () ->
        (* a=3: one r witness x two s witnesses *)
        check_rows (setup ())
          "SELECT PROVENANCE a FROM r WHERE a = 3 INTERSECT SELECT a FROM s WHERE a = 3"
          [
            [ "3"; "3"; "null"; "3"; "30" ];
            [ "3"; "3"; "null"; "3"; "33" ];
          ]);
    case "except keeps left witnesses, right provenance NULL" (fun () ->
        check_rows (setup ())
          "SELECT PROVENANCE a FROM r EXCEPT SELECT a FROM s"
          [ [ "1"; "1"; "x"; "null"; "null" ] ]);
    case "limit rejoins only surviving tuples" (fun () ->
        check_rows ~ordered:true (setup ())
          "SELECT PROVENANCE a FROM r WHERE a < 2 ORDER BY a LIMIT 1"
          [ [ "1"; "1"; "x" ] ]);
    case "semi join (IN) exposes subquery witnesses" (fun () ->
        check_rows (setup ())
          "SELECT PROVENANCE b FROM r WHERE a IN (SELECT a FROM s WHERE c = 20)"
          [ [ "y"; "2"; "y"; "2"; "20" ]; [ "y"; "2"; "y"; "2"; "20" ] ]);
    case "anti join (NOT IN): subquery contributes nothing" (fun () ->
        check_rows (setup ())
          "SELECT PROVENANCE a FROM r WHERE a NOT IN (SELECT a FROM s)"
          [ [ "1"; "1"; "x" ] ]);
    case "correlated EXISTS provenance" (fun () ->
        (* a=2 twice x 1 witness, a=3 once x 2 witnesses *)
        check_count (setup ())
          "SELECT PROVENANCE a FROM r WHERE EXISTS (SELECT 1 FROM s WHERE s.a = r.a)"
          4);
    case "scalar subquery contributes provenance" (fun () ->
        check_rows (setup ())
          "SELECT PROVENANCE a, (SELECT max(c) FROM s) AS mx FROM r WHERE a = 1"
          [
            [ "1"; "90"; "1"; "x"; "2"; "20" ];
            [ "1"; "90"; "1"; "x"; "3"; "30" ];
            [ "1"; "90"; "1"; "x"; "3"; "33" ];
            [ "1"; "90"; "1"; "x"; "9"; "90" ];
          ]);
    case "baserelation stops rewriting" (fun () ->
        let e = setup () in
        exec_all e [ "CREATE VIEW rv AS SELECT a + 1 AS a1 FROM r" ];
        check_rows e "SELECT PROVENANCE a1 FROM rv BASERELATION WHERE a1 = 2"
          [ [ "2"; "2" ] ]);
    case "external provenance passes through" (fun () ->
        let e = setup () in
        exec_all e
          [
            "CREATE TABLE ext (v int, prov_x text)";
            "INSERT INTO ext VALUES (1, 'p1'), (2, 'p2')";
          ];
        check_rows e "SELECT PROVENANCE v FROM ext PROVENANCE (prov_x) WHERE v = 2"
          [ [ "2"; "p2" ] ]);
    case "no marker means no rewrite effect" (fun () ->
        check_same (setup ()) "SELECT a FROM r" "SELECT a FROM r");
  ]

let invariant_tests =
  [
    case "projection of q+ onto original columns = distinct q (replicating query)" (fun () ->
        let e = setup () in
        let q = "SELECT count(*), a FROM s GROUP BY a" in
        let qp = "SELECT PROVENANCE count(*), a FROM s GROUP BY a" in
        let orig = strings_of_rows (query_ok e q).Engine.rows in
        let prov = strings_of_rows (query_ok e qp).Engine.rows in
        let projected = List.sort_uniq compare (originals prov 2) in
        Alcotest.(check rows_testable) "" (List.sort compare orig) projected);
    case "spj query: q+ projection equals q exactly (no replication)" (fun () ->
        let e = setup () in
        let q = "SELECT b FROM r WHERE a = 2" in
        let qp = "SELECT PROVENANCE b FROM r WHERE a = 2" in
        let orig = strings_of_rows (query_ok e q).Engine.rows in
        let prov = strings_of_rows (query_ok e qp).Engine.rows in
        Alcotest.(check rows_testable) "" (List.sort compare orig)
          (List.sort compare (originals prov 1)));
    case "provenance tuples exist in their base relations" (fun () ->
        let e = setup () in
        let prov =
          strings_of_rows
            (query_ok e "SELECT PROVENANCE r.b FROM r JOIN s ON r.a = s.a").Engine.rows
        in
        let r_rows = strings_of_rows (query_ok e "SELECT a, b FROM r").Engine.rows in
        let s_rows = strings_of_rows (query_ok e "SELECT a, c FROM s").Engine.rows in
        List.iter
          (fun row ->
            match row with
            | [ _; ra; rb; sa; sc ] ->
              if ra <> "null" || rb <> "null" then
                Alcotest.(check bool) "r witness exists" true
                  (List.mem [ ra; rb ] r_rows);
              if sa <> "null" || sc <> "null" then
                Alcotest.(check bool) "s witness exists" true
                  (List.mem [ sa; sc ] s_rows)
            | _ -> Alcotest.fail "unexpected arity")
          prov);
  ]

let strategy_tests =
  [
    case "join and lateral aggregation strategies agree" (fun () ->
        let sqls =
          [
            "SELECT PROVENANCE count(*), a FROM s GROUP BY a";
            "SELECT PROVENANCE sum(c) FROM s";
            "SELECT PROVENANCE count(*), b FROM r GROUP BY b HAVING count(*) >= 1";
          ]
        in
        List.iter
          (fun sql ->
            let run strategy =
              let e = setup () in
              Engine.set_agg_strategy e strategy;
              List.sort compare (strings_of_rows (query_ok e sql).Engine.rows)
            in
            Alcotest.(check rows_testable) sql (run Engine.Use_join) (run Engine.Use_lateral))
          sqls);
    case "report records strategy choice" (fun () ->
        let e = setup () in
        Engine.set_agg_strategy e Engine.Use_lateral;
        ignore (query_ok e "SELECT PROVENANCE count(*) FROM r");
        match Engine.last_report e with
        | Some r ->
          Alcotest.(check bool) "" true (r.Rewriter.agg_choices = [ Rewriter.Agg_lateral ])
        | None -> Alcotest.fail "no report");
    case "cost-based mode picks a strategy and stays correct" (fun () ->
        let e = setup () in
        Engine.set_agg_strategy e Engine.Use_cost_based;
        check_count e "SELECT PROVENANCE count(*), a FROM s GROUP BY a" 4;
        match Engine.last_report e with
        | Some r -> Alcotest.(check int) "one choice" 1 (List.length r.Rewriter.agg_choices)
        | None -> Alcotest.fail "no report");
    case "heuristic default picks the join strategy" (fun () ->
        let e = setup () in
        ignore (query_ok e "SELECT PROVENANCE count(*) FROM r");
        match Engine.last_report e with
        | Some r ->
          Alcotest.(check bool) "" true (r.Rewriter.agg_choices = [ Rewriter.Agg_join ])
        | None -> Alcotest.fail "no report");
    case "marker count reported" (fun () ->
        let e = setup () in
        ignore (query_ok e "SELECT PROVENANCE a FROM (SELECT PROVENANCE a, b FROM r) x");
        match Engine.last_report e with
        | Some r -> Alcotest.(check int) "" 2 r.Rewriter.rewritten_markers
        | None -> Alcotest.fail "no report");
    case "strategy counter matches explain's agg_strategies (heuristic)" (fun () ->
        let e = setup () in
        Engine.set_agg_strategy e Engine.Use_heuristic;
        let sql = "SELECT PROVENANCE count(*), a FROM s GROUP BY a" in
        let ex =
          match Engine.explain e sql with
          | Ok ex -> ex
          | Error msg -> Alcotest.fail msg
        in
        let count_of name =
          List.length (List.filter (( = ) name) ex.Engine.agg_strategies)
        in
        let m = Engine.metrics e in
        Alcotest.(check int) "rewriter.strategy.join counter"
          (count_of "join")
          (Perm_obs.Metrics.counter m "rewriter.strategy.join");
        Alcotest.(check int) "rewriter.strategy.lateral counter"
          (count_of "lateral")
          (Perm_obs.Metrics.counter m "rewriter.strategy.lateral");
        (* the heuristic always takes the join rewrite, so the lateral
           counter must still be zero *)
        Alcotest.(check int) "heuristic never picks lateral" 0
          (Perm_obs.Metrics.counter m "rewriter.strategy.lateral"));
    case "report rule_counts record rule firings, sorted" (fun () ->
        let e = setup () in
        ignore (query_ok e "SELECT PROVENANCE count(*), a FROM s GROUP BY a");
        match Engine.last_report e with
        | None -> Alcotest.fail "no report"
        | Some r ->
          Alcotest.(check (option int)) "aggregate_join fired once" (Some 1)
            (List.assoc_opt "aggregate_join" r.Rewriter.rule_counts);
          Alcotest.(check (option int)) "base_relation fired once" (Some 1)
            (List.assoc_opt "base_relation" r.Rewriter.rule_counts);
          Alcotest.(check (list string)) "sorted by rule name"
            (List.sort compare (List.map fst r.Rewriter.rule_counts))
            (List.map fst r.Rewriter.rule_counts));
  ]

let sources_tests =
  [
    case "sources in DFS order with figure-2 naming" (fun () ->
        let e = forum_engine () in
        match Engine.plan_query e Perm_workload.Forum.q1_provenance with
        | Ok (Plan.Prov { sources; _ }, _) ->
          Alcotest.(check (list string)) ""
            [
              "prov_messages_mid"; "prov_messages_text"; "prov_messages_uid";
              "prov_imports_mid"; "prov_imports_text"; "prov_imports_origin";
            ]
            (List.map (fun (s : Plan.prov_source) -> s.Plan.prov_attr.Attr.name) sources)
        | Ok _ -> Alcotest.fail "expected Prov root"
        | Error msg -> Alcotest.fail msg);
    case "anti join right side excluded from sources" (fun () ->
        let e = setup () in
        match Engine.plan_query e
                "SELECT PROVENANCE a FROM r WHERE a NOT IN (SELECT a FROM s)"
        with
        | Ok (Plan.Prov { sources; _ }, _) ->
          Alcotest.(check int) "only r columns" 2 (List.length sources)
        | Ok _ -> Alcotest.fail "expected Prov root"
        | Error msg -> Alcotest.fail msg);
    case "values contribute no sources" (fun () ->
        let e = setup () in
        match Engine.plan_query e "SELECT PROVENANCE 1 + 1" with
        | Ok (Plan.Prov { sources; _ }, _) ->
          Alcotest.(check int) "" 0 (List.length sources)
        | Ok _ -> Alcotest.fail "expected Prov root"
        | Error msg -> Alcotest.fail msg);
  ]

let copy_tests =
  [
    case "copy: uncopied relation provenance is NULL" (fun () ->
        check_rows (setup ())
          "SELECT PROVENANCE ON CONTRIBUTION (COPY) r.b FROM r JOIN s ON r.a = s.a WHERE s.c = 20"
          [
            [ "y"; "2"; "y"; "null"; "null" ];
            [ "y"; "2"; "y"; "null"; "null" ];
          ]);
    case "copy: both relations copied keeps both" (fun () ->
        check_rows (setup ())
          "SELECT PROVENANCE ON CONTRIBUTION (COPY) r.b, s.c FROM r JOIN s ON r.a = s.a WHERE s.c = 20"
          [
            [ "y"; "20"; "2"; "y"; "2"; "20" ];
            [ "y"; "20"; "2"; "y"; "2"; "20" ];
          ]);
    case "copy complete needs every column copied" (fun () ->
        let e = setup () in
        (* only a copied: r does not qualify under COMPLETE *)
        check_rows e
          "SELECT PROVENANCE ON CONTRIBUTION (COPY COMPLETE) a FROM r WHERE a = 1"
          [ [ "1"; "null"; "null" ] ];
        (* both a and b copied: qualifies *)
        check_rows e
          "SELECT PROVENANCE ON CONTRIBUTION (COPY COMPLETE) a, b FROM r WHERE a = 1"
          [ [ "1"; "x"; "1"; "x" ] ]);
    case "copy through union branches" (fun () ->
        (* b copied from r-branch; s-branch copies a only *)
        check_rows (setup ())
          "SELECT PROVENANCE ON CONTRIBUTION (COPY) b FROM r WHERE a = 1 UNION ALL SELECT 'k' FROM s WHERE a = 9"
          [
            [ "x"; "1"; "x"; "null"; "null" ];
            [ "k"; "null"; "null"; "null"; "null" ];
          ]);
    case "copy: group-by key counts as copied" (fun () ->
        check_rows (setup ())
          "SELECT PROVENANCE ON CONTRIBUTION (COPY) a, count(*) FROM s GROUP BY a"
          [
            [ "2"; "1"; "2"; "20" ];
            [ "3"; "2"; "3"; "30" ];
            [ "3"; "2"; "3"; "33" ];
            [ "9"; "1"; "9"; "90" ];
          ]);
    case "external provenance always qualifies under copy" (fun () ->
        let e = setup () in
        exec_all e
          [
            "CREATE TABLE ext (v int, prov_x text)";
            "INSERT INTO ext VALUES (7, 'p7')";
          ];
        check_rows e
          "SELECT PROVENANCE ON CONTRIBUTION (COPY) v + 1 FROM ext PROVENANCE (prov_x)"
          [ [ "8"; "p7" ] ]);
  ]

let () =
  Alcotest.run "rewriter"
    [
      ("rules", rule_tests);
      ("invariants", invariant_tests);
      ("strategies", strategy_tests);
      ("sources", sources_tests);
      ("copy-semantics", copy_tests);
    ]
