(* Queryable telemetry: statement fingerprints, the perm_stat_statements /
   perm_stat_relations / perm_metrics system views through the ordinary
   query pipeline, Chrome trace export (with nesting invariants), the
   JSON-lines event log, and the JSON parser behind bench --compare. *)

module Engine = Perm_engine.Engine
module Fingerprint = Perm_sql.Fingerprint
module Metrics = Perm_obs.Metrics
module Trace = Perm_obs.Trace
module Json = Perm_obs.Json
module Stats = Perm_obs.Stats
module Eventlog = Perm_obs.Eventlog
module History = Perm_obs.History
open Perm_testkit.Kit

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Fingerprint normalization                                           *)
(* ------------------------------------------------------------------ *)

let fingerprint_tests =
  [
    case "literals, params, whitespace and casing collapse" (fun () ->
        let fp = Fingerprint.of_sql in
        let canonical = fp "SELECT text FROM messages WHERE mid = 42" in
        List.iter
          (fun sql ->
            Alcotest.(check string) sql canonical (fp sql))
          [
            "SELECT text FROM messages WHERE mid = 17";
            "select TEXT from MESSAGES where MID = 3";
            "SELECT   text\n  FROM messages\tWHERE mid =\n 1000";
            "SELECT text FROM messages WHERE mid = $1";
            "SELECT text FROM messages WHERE mid = 42;";
          ];
        Alcotest.(check string) "string literals too"
          (fp "SELECT * FROM t WHERE name = 'alice'")
          (fp "SELECT * FROM t WHERE name = 'bob'");
        Alcotest.(check string) "float literals too"
          (fp "SELECT * FROM t WHERE x > 1.5")
          (fp "SELECT * FROM t WHERE x > 2.25"));
    case "distinct shapes keep distinct fingerprints" (fun () ->
        let fp = Fingerprint.of_sql in
        let a = fp "SELECT text FROM messages WHERE mid = 1" in
        Alcotest.(check bool) "different column" false
          (a = fp "SELECT mid FROM messages WHERE mid = 1");
        Alcotest.(check bool) "different table" false
          (a = fp "SELECT text FROM imports WHERE mid = 1");
        Alcotest.(check bool) "different predicate" false
          (a = fp "SELECT text FROM messages WHERE mid > 1");
        Alcotest.(check bool) "provenance is structural" false
          (a = fp "SELECT PROVENANCE text FROM messages WHERE mid = 1"));
    case "IN-lists and VALUES rows collapse to one placeholder" (fun () ->
        let fp = Fingerprint.of_sql in
        Alcotest.(check string) "IN-list length is not shape"
          (fp "SELECT * FROM t WHERE a IN (1, 2, 3, 4, 5)")
          (fp "SELECT * FROM t WHERE a IN (42)");
        Alcotest.(check string) "string IN-lists too"
          (fp "SELECT * FROM t WHERE name IN ('a', 'b', 'c')")
          (fp "SELECT * FROM t WHERE name IN ('z')");
        Alcotest.(check string) "multi-row VALUES collapse"
          (fp "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
          (fp "INSERT INTO t VALUES (9, 'z')");
        (* collapsing is purely over literal runs: column lists keep arity *)
        Alcotest.(check bool) "identifier lists keep their arity" false
          (fp "SELECT a, b, c FROM t" = fp "SELECT a FROM t"));
    case "normalization round-trips: of_sql is idempotent" (fun () ->
        let fp = Fingerprint.of_sql in
        List.iter
          (fun sql ->
            let once = fp sql in
            Alcotest.(check string) ("fixpoint of " ^ sql) once (fp once))
          [
            "SELECT text FROM messages WHERE mid = 42";
            "SELECT * FROM t WHERE a IN (1, 2, 3)";
            "INSERT INTO t VALUES (1, 'a'), (2, 'b')";
            "SELECT PROVENANCE m.text FROM messages m, users u WHERE m.uid \
             = u.uid AND u.name = 'alice'";
            "SELECT uid, count(*) FROM messages GROUP BY uid HAVING \
             count(*) > 10";
          ]);
    case "quoted identifiers keep case; unlexable input stays stable" (fun () ->
        let fp = Fingerprint.of_sql in
        Alcotest.(check bool) "quoted idents are case-sensitive names" false
          (fp "SELECT \"Col\" FROM t" = fp "SELECT \"col\" FROM t");
        (* unterminated string: lexer fails, fallback is deterministic *)
        let bad = "SELECT 'oops FROM t" in
        Alcotest.(check string) "fallback deterministic" (fp bad) (fp bad));
  ]

(* ------------------------------------------------------------------ *)
(* perm_stat_statements through the ordinary pipeline                  *)
(* ------------------------------------------------------------------ *)

let stat_statements_tests =
  [
    case "literal variants aggregate into one fingerprint row" (fun () ->
        let e = forum_engine () in
        ignore (query_ok e "SELECT text FROM messages WHERE mid = 1");
        ignore (query_ok e "SELECT text FROM messages WHERE mid = 2");
        ignore (query_ok e "SELECT text FROM messages WHERE mid = 3");
        check_rows e
          "SELECT calls FROM perm_stat_statements WHERE fingerprint = \
           'select text from messages where mid = ?'"
          [ [ "3" ] ]);
    case "rows, phases and mean are accumulated" (fun () ->
        let e = forum_engine () in
        ignore (query_ok e "SELECT mid FROM messages");
        ignore (query_ok e "SELECT mid FROM messages");
        let rs =
          query_ok e
            "SELECT calls, rows, total_ms, mean_ms, execute_ms FROM \
             perm_stat_statements WHERE query = 'SELECT mid FROM messages'"
        in
        (match rs.Engine.rows with
        | [ [| calls; rows; total; mean; execute |] ] ->
          Alcotest.(check string) "calls" "2" (Perm_value.Value.to_string calls);
          (* the Figure 1 forum has 2 messages *)
          Alcotest.(check string) "rows" "4" (Perm_value.Value.to_string rows);
          let f v =
            match v with
            | Perm_value.Value.Float x -> x
            | _ -> Alcotest.fail "expected float"
          in
          Alcotest.(check bool) "total > 0" true (f total > 0.);
          Alcotest.(check (float 1e-9)) "mean = total/2" (f total /. 2.) (f mean);
          (* a 2-row execute can finish inside one gettimeofday tick and
             legitimately measure 0.0 ms — recorded means non-NULL, not
             necessarily nonzero *)
          Alcotest.(check bool) "execute phase recorded" true (f execute >= 0.)
        | _ -> Alcotest.fail "expected exactly one stats row"));
    case "provenance flag and rewrite-rule firings" (fun () ->
        let e = forum_engine () in
        ignore (query_ok e "SELECT PROVENANCE text FROM messages");
        let rs =
          query_ok e
            "SELECT provenance, rule_firings, rules FROM perm_stat_statements \
             WHERE query = 'SELECT PROVENANCE text FROM messages'"
        in
        (match rs.Engine.rows with
        | [ [| prov; firings; rules |] ] ->
          Alcotest.(check string) "provenance" "true"
            (Perm_value.Value.to_string prov);
          (match firings with
          | Perm_value.Value.Int n -> Alcotest.(check bool) "fired" true (n > 0)
          | _ -> Alcotest.fail "rule_firings not an int");
          Alcotest.(check bool) "rule names listed" true
            (String.length (Perm_value.Value.to_string rules) > 0)
        | _ -> Alcotest.fail "expected exactly one stats row"));
    case "errors count under the failing statement's fingerprint" (fun () ->
        let e = engine () in
        ignore (Engine.execute e "SELECT nope FROM missing");
        check_rows e
          "SELECT calls, errors FROM perm_stat_statements WHERE fingerprint = \
           'select nope from missing'"
          [ [ "1"; "1" ] ]);
    case "the view is filterable, orderable and joinable" (fun () ->
        let e = forum_engine () in
        ignore (query_ok e "SELECT mid FROM messages");
        ignore (query_ok e "SELECT mid FROM messages");
        ignore (query_ok e "SELECT uid FROM users");
        (* ORDER BY works like any relation *)
        let rs =
          query_ok e
            "SELECT fingerprint FROM perm_stat_statements WHERE calls > 1 \
             ORDER BY total_ms DESC"
        in
        Alcotest.(check bool) "at least the repeated query" true
          (List.length rs.Engine.rows >= 1);
        (* and it joins against ordinary tables *)
        let rs2 =
          query_ok e
            "SELECT s.calls, h.n FROM perm_stat_statements s JOIN (SELECT \
             count(*) AS n FROM users) h ON 1 = 1 WHERE s.fingerprint = \
             'select mid from messages'"
        in
        Alcotest.(check int) "join row" 1 (List.length rs2.Engine.rows));
    case "virtual relations reject DML, DROP and name reuse" (fun () ->
        let e = engine () in
        let err sql =
          match Engine.execute e sql with
          | Ok _ -> Alcotest.failf "expected an error on %S" sql
          | Error msg -> msg
        in
        Alcotest.(check bool) "INSERT refused" true
          (contains (err "INSERT INTO perm_metrics VALUES (1)") "virtual");
        Alcotest.(check bool) "DELETE refused" true
          (contains (err "DELETE FROM perm_stat_statements") "virtual");
        Alcotest.(check bool) "DROP refused" true
          (contains (err "DROP TABLE perm_stat_relations") "virtual");
        Alcotest.(check bool) "CREATE TABLE name collision" true
          (contains (err "CREATE TABLE perm_metrics (a int)") "exists"));
    case "reset_statement_stats empties the view" (fun () ->
        let e = engine () in
        ignore (Engine.execute e "CREATE TABLE t (a int)");
        Engine.reset_statement_stats e;
        check_count e "SELECT * FROM perm_stat_statements" 0);
  ]

(* ------------------------------------------------------------------ *)
(* perm_stat_relations and perm_metrics                                *)
(* ------------------------------------------------------------------ *)

let other_views_tests =
  [
    case "perm_stat_relations counts scans under instrumentation" (fun () ->
        let e = forum_engine () in
        Engine.set_instrumentation e true;
        ignore (query_ok e "SELECT mid FROM messages");
        ignore (query_ok e "SELECT mid FROM messages");
        check_rows e
          "SELECT relation, scans, rows FROM perm_stat_relations WHERE \
           relation = 'messages'"
          [ [ "messages"; "2"; "4" ] ]);
    case "perm_metrics exposes counters and gc gauges as rows" (fun () ->
        let e = engine () in
        ignore (Engine.execute e "CREATE TABLE t (a int)");
        let rs =
          query_ok e
            "SELECT value FROM perm_metrics WHERE name = 'engine.statements' \
             AND kind = 'counter'"
        in
        (match rs.Engine.rows with
        | [ [| Perm_value.Value.Float v |] ] ->
          Alcotest.(check bool) "at least one statement" true (v >= 1.)
        | _ -> Alcotest.fail "counter row missing");
        (* GC gauges are registered at scan time *)
        check_count e
          "SELECT * FROM perm_metrics WHERE name = 'gc.minor_collections'" 1;
        (* histogram rows carry quantile estimates *)
        let rs2 =
          query_ok e
            "SELECT p50, p95, p99 FROM perm_metrics WHERE name = \
             'engine.statement.ms'"
        in
        Alcotest.(check int) "histogram row" 1 (List.length rs2.Engine.rows));
  ]

(* ------------------------------------------------------------------ *)
(* perm_stat_plans / perm_stat_workers and live progress               *)
(* ------------------------------------------------------------------ *)

let profiler_views_tests =
  [
    case "perm_stat_plans retains per-node est/act across calls" (fun () ->
        let e = forum_engine () in
        Engine.set_instrumentation e true;
        ignore (query_ok e "SELECT mid FROM messages");
        ignore (query_ok e "SELECT mid FROM messages");
        (* the scan node: actual rows accumulate, loops count executions *)
        check_rows e
          "SELECT operator, act_rows, loops FROM perm_stat_plans WHERE \
           operator = 'Scan(messages)'"
          [ [ "Scan(messages)"; "4"; "2" ] ];
        (* estimates come from the planner's cardinality model *)
        let rs =
          query_ok e
            "SELECT est_rows FROM perm_stat_plans WHERE operator = \
             'Scan(messages)'"
        in
        (match rs.Engine.rows with
        | [ [| Perm_value.Value.Float est |] ] ->
          Alcotest.(check bool) "estimate positive" true (est > 0.)
        | _ -> Alcotest.fail "est_rows row missing");
        (* node ids are stable pre-order positions: the root is id 0
           (filtered by fingerprint — the profile also retains the probe
           queries against the view itself) *)
        check_count e
          "SELECT * FROM perm_stat_plans WHERE node_id = 0 AND fingerprint \
           = 'select mid from messages'"
          1;
        Engine.reset_statement_stats e;
        check_count e "SELECT * FROM perm_stat_plans" 0);
    case "perm_stat_workers reports per-domain totals after a parallel run"
      (fun () ->
        let e = forum_engine () in
        Engine.set_instrumentation e true;
        Engine.set_parallel e (Engine.Par_domains 2);
        Engine.set_parallel_threshold e 1;
        Engine.set_morsel_rows e 1;
        ignore (query_ok e "SELECT mid, text FROM messages WHERE mid >= 0");
        (* one row per domain (participants and idle workers alike) *)
        check_count e "SELECT * FROM perm_stat_workers" 2;
        let rs =
          query_ok e
            "SELECT morsels, rows FROM perm_stat_workers ORDER BY domain"
        in
        let total_morsels =
          List.fold_left
            (fun acc row ->
              match row.(0) with
              | Perm_value.Value.Int n -> acc + n
              | _ -> acc)
            0 rs.Engine.rows
        in
        Alcotest.(check bool) "all morsels accounted for" true
          (total_morsels > 0);
        Engine.close e);
    case "plan profile rides the parallel path under instrumentation"
      (fun () ->
        let e = forum_engine () in
        Engine.set_instrumentation e true;
        Engine.set_parallel e (Engine.Par_domains 2);
        Engine.set_parallel_threshold e 1;
        Engine.set_morsel_rows e 1;
        ignore (query_ok e "SELECT mid, text FROM messages WHERE mid >= 0");
        let rs =
          query_ok e
            "SELECT operator, act_rows FROM perm_stat_plans WHERE operator \
             = 'Scan(messages)'"
        in
        (match rs.Engine.rows with
        | [ [| _; Perm_value.Value.Int act |] ] ->
          Alcotest.(check int) "scan rows from the morsel stages" 2 act
        | _ -> Alcotest.fail "parallel scan profile missing");
        Engine.close e);
    case "Engine.progress reports the finished statement" (fun () ->
        let e = forum_engine () in
        ignore (query_ok e "SELECT mid FROM messages");
        match Engine.progress e with
        | None -> Alcotest.fail "no progress record"
        | Some p ->
          Alcotest.(check string) "sql" "SELECT mid FROM messages"
            p.Engine.pr_sql;
          Alcotest.(check bool) "not running anymore" false p.Engine.pr_running;
          Alcotest.(check int) "rows" 2 p.Engine.pr_rows;
          Alcotest.(check bool) "elapsed measured" true
            (p.Engine.pr_elapsed_ms >= 0.));
    case "parallel progress counts morsels" (fun () ->
        let e = forum_engine () in
        Engine.set_parallel e (Engine.Par_domains 2);
        Engine.set_parallel_threshold e 1;
        Engine.set_morsel_rows e 1;
        ignore (query_ok e "SELECT mid, text FROM messages WHERE mid >= 0");
        (match Engine.progress e with
        | None -> Alcotest.fail "no progress record"
        | Some p ->
          Alcotest.(check bool) "fanned out" true (p.Engine.pr_morsels_total > 0);
          Alcotest.(check int) "all morsels done" p.Engine.pr_morsels_total
            p.Engine.pr_morsels_done;
          Alcotest.(check int) "rows" 2 p.Engine.pr_rows);
        Engine.close e);
    case "governor kills report where the statement died" (fun () ->
        let e = forum_engine () in
        Engine.set_row_limit e 1;
        (match Engine.execute_err e "SELECT mid FROM messages" with
        | Ok _ -> Alcotest.fail "row limit did not fire"
        | Error err ->
          Alcotest.(check bool) "message carries the death site" true
            (contains err.Perm_err.msg "died at"));
        Engine.set_row_limit e 0);
  ]

(* ------------------------------------------------------------------ *)
(* Telemetry history: per-fingerprint rings + the regression watchdog  *)
(* ------------------------------------------------------------------ *)

let history_tests =
  [
    case "executions accumulate with a stable plan hash; literals share it"
      (fun () ->
        let e = forum_engine () in
        let h = Engine.history e in
        ignore (query_ok e "SELECT text FROM messages WHERE mid = 1");
        ignore (query_ok e "SELECT text FROM messages WHERE mid = 2");
        ignore (query_ok e "SELECT text FROM messages WHERE mid = 3");
        let fp = Fingerprint.of_sql "SELECT text FROM messages WHERE mid = 1" in
        let recs = History.executions_for h fp in
        Alcotest.(check int) "one ring entry per execution" 3
          (List.length recs);
        (match recs with
        | first :: rest ->
          Alcotest.(check bool) "plan hash assigned" true
            (first.History.ex_plan_hash <> "");
          (* constants are blanked out of the hash, so different literals
             are the same plan *)
          List.iter
            (fun r ->
              Alcotest.(check string) "hash stable across re-executions"
                first.History.ex_plan_hash r.History.ex_plan_hash)
            rest;
          ignore
            (List.fold_left
               (fun prev r ->
                 Alcotest.(check bool) "seq monotone" true
                   (r.History.ex_seq > prev);
                 r.History.ex_seq)
               (-1) recs)
        | [] -> Alcotest.fail "no executions retained");
        (* no watchdog noise from plain re-executions *)
        Alcotest.(check int) "no regressions" 0
          (List.length
             (List.filter
                (fun r -> r.History.rg_fingerprint = fp)
                (History.regressions h))));
    case "ring capacity bounds retention and counts drops" (fun () ->
        let e = forum_engine () in
        let h = Engine.history e in
        History.set_capacity h 2;
        let sql = "SELECT mid FROM messages" in
        for _ = 1 to 5 do
          ignore (query_ok e sql)
        done;
        let fp = Fingerprint.of_sql sql in
        let recs = History.executions_for h fp in
        Alcotest.(check int) "ring keeps capacity records" 2
          (List.length recs);
        (* the newest two of the five survive *)
        Alcotest.(check bool) "newest retained" true
          (List.for_all (fun r -> not r.History.ex_error) recs);
        Alcotest.(check bool) "drops counted" true (History.dropped h >= 3));
    case "capacity 0 disables recording and discards history" (fun () ->
        let e = forum_engine () in
        let h = Engine.history e in
        ignore (query_ok e "SELECT mid FROM messages");
        History.set_capacity h 0;
        Alcotest.(check bool) "disabled" false (History.enabled h);
        ignore (query_ok e "SELECT uid FROM users");
        Alcotest.(check int) "nothing retained" 0
          (List.length (History.executions h)));
    case "errors are retained but never flagged, never fold into baseline"
      (fun () ->
        let h = History.create () in
        History.set_factor h 0.;
        History.set_min_samples h 1;
        let rec_ok ms =
          History.record h ~fingerprint:"q" ~ts:0. ~plan_hash:"abc" ~ms
            ~rows:10 ~est_rows:10. ~skew:1. ~error:false ~phases:[]
        in
        ignore (rec_ok 1.);
        let flagged =
          History.record h ~fingerprint:"q" ~ts:1. ~plan_hash:"abc" ~ms:100.
            ~rows:10 ~est_rows:10. ~skew:1. ~error:true ~phases:[]
        in
        Alcotest.(check bool) "error not flagged" true (flagged = None);
        (match History.baseline h "q" with
        | Some (_, samples) ->
          Alcotest.(check int) "error did not fold into baseline" 1 samples
        | None -> Alcotest.fail "baseline lost");
        let recs = History.executions_for h "q" in
        Alcotest.(check int) "error retained in ring" 2 (List.length recs);
        Alcotest.(check bool) "error bit set" true
          (List.exists (fun r -> r.History.ex_error) recs));
    case "watchdog waits for min_samples before flagging" (fun () ->
        let h = History.create () in
        History.set_factor h 0.;
        (* factor 0: flag whenever allowed *)
        History.set_min_samples h 3;
        let go ts =
          History.record h ~fingerprint:"q" ~ts ~plan_hash:"abc" ~ms:1.
            ~rows:10 ~est_rows:10. ~skew:1. ~error:false ~phases:[]
        in
        Alcotest.(check bool) "1st: no baseline yet" true (go 0. = None);
        Alcotest.(check bool) "2nd: 1 sample < 3" true (go 1. = None);
        Alcotest.(check bool) "3rd: 2 samples < 3" true (go 2. = None);
        (match go 3. with
        | Some rg ->
          Alcotest.(check string) "cause" "unknown"
            (History.cause_label rg.History.rg_cause)
        | None -> Alcotest.fail "4th execution should be flagged"));
    case "skew regression attributed to parallel imbalance" (fun () ->
        let h = History.create () in
        History.set_factor h 0.;
        History.set_min_samples h 1;
        ignore
          (History.record h ~fingerprint:"q" ~ts:0. ~plan_hash:"abc" ~ms:1.
             ~rows:10 ~est_rows:10. ~skew:1. ~error:false ~phases:[]);
        (match
           History.record h ~fingerprint:"q" ~ts:1. ~plan_hash:"abc" ~ms:1.
             ~rows:10 ~est_rows:10. ~skew:3. ~error:false ~phases:[]
         with
        | Some rg ->
          Alcotest.(check string) "cause" "skew"
            (History.cause_label rg.History.rg_cause);
          Alcotest.(check bool) "detail names the skew" true
            (contains rg.History.rg_detail "skew")
        | None -> Alcotest.fail "skewed execution should be flagged"));
    case "LRU eviction bounds distinct fingerprints" (fun () ->
        let h = History.create () in
        History.set_max_fingerprints h 2;
        let go fp =
          ignore
            (History.record h ~fingerprint:fp ~ts:0. ~plan_hash:"" ~ms:1.
               ~rows:1 ~est_rows:1. ~skew:1. ~error:false ~phases:[])
        in
        go "a";
        go "b";
        go "c";
        let fps = History.fingerprints h in
        Alcotest.(check int) "two fingerprints retained" 2 (List.length fps);
        Alcotest.(check bool) "oldest evicted" false (List.mem "a" fps);
        Alcotest.(check bool) "eviction counted" true (History.dropped h >= 1));
    case "approx_bytes grows with retention and the budget evicts" (fun () ->
        let h = History.create () in
        let before = History.approx_bytes h in
        for i = 1 to 50 do
          ignore
            (History.record h
               ~fingerprint:(Printf.sprintf "q%d" i)
               ~ts:0. ~plan_hash:"abcdef012345" ~ms:1. ~rows:1 ~est_rows:1.
               ~skew:1. ~error:false
               ~phases:[ ("execute", 1.) ])
        done;
        let mid = History.approx_bytes h in
        Alcotest.(check bool) "footprint grows" true (mid > before);
        History.set_max_bytes h 1;
        (* an impossible budget: everything evictable is evicted *)
        ignore
          (History.record h ~fingerprint:"last" ~ts:0. ~plan_hash:"" ~ms:1.
             ~rows:1 ~est_rows:1. ~skew:1. ~error:false ~phases:[]);
        Alcotest.(check bool) "budget shrank retention" true
          (History.approx_bytes h < mid));
  ]

(* The acceptance scenario: an induced plan change is detected and
   attributed, both through the History API and the SQL views. *)
let watchdog_detection_tests =
  [
    case "CREATE INDEX flips the plan hash: plan-change regression" (fun () ->
        let e = forum_engine () in
        let h = Engine.history e in
        let sql = "SELECT text FROM messages WHERE mid = 1" in
        for _ = 1 to 3 do
          ignore (query_ok e sql)
        done;
        ignore (exec_ok e "CREATE INDEX idx_mid ON messages(mid)");
        ignore (query_ok e sql);
        let fp = Fingerprint.of_sql sql in
        let regs =
          List.filter
            (fun r -> r.History.rg_fingerprint = fp)
            (History.regressions h)
        in
        Alcotest.(check int) "exactly one regression" 1 (List.length regs);
        let rg = List.hd regs in
        Alcotest.(check string) "cause" "plan-change"
          (History.cause_label rg.History.rg_cause);
        Alcotest.(check bool) "detail shows both hashes" true
          (contains rg.History.rg_detail "plan hash");
        Alcotest.(check bool) "new hash recorded" true
          (rg.History.rg_plan_hash <> "");
        (* the same report through the SQL surface *)
        check_rows e
          (Printf.sprintf
             "SELECT cause FROM perm_stat_regressions WHERE fingerprint = \
              '%s'"
             fp)
          [ [ "plan-change" ] ];
        (* the history view shows the hash flip *)
        let rs =
          query_ok e
            (Printf.sprintf
               "SELECT plan_hash FROM perm_stat_history WHERE fingerprint = \
                '%s' ORDER BY seq"
               fp)
        in
        (match List.map (fun r -> Perm_value.Value.to_string r.(0)) rs.Engine.rows with
        | h1 :: rest ->
          let last = List.nth rest (List.length rest - 1) in
          Alcotest.(check bool) "hash changed" true (h1 <> last)
        | [] -> Alcotest.fail "history view empty"));
    case "parallel verdict flip is a plan change too" (fun () ->
        let e = forum_engine () in
        let h = Engine.history e in
        let sql = "SELECT mid, text FROM messages WHERE mid >= 0" in
        ignore (query_ok e sql);
        ignore (query_ok e sql);
        Engine.set_parallel e (Engine.Par_domains 2);
        Engine.set_parallel_threshold e 1;
        Engine.set_morsel_rows e 1;
        ignore (query_ok e sql);
        let fp = Fingerprint.of_sql sql in
        let regs =
          List.filter
            (fun r ->
              r.History.rg_fingerprint = fp
              && r.History.rg_cause = History.Plan_change)
            (History.regressions h)
        in
        Alcotest.(check int) "serial -> parallel flagged" 1 (List.length regs);
        Engine.close e);
    case "cardinality growth is attributed when timing regresses" (fun () ->
        let e = forum_engine () in
        let h = Engine.history e in
        (* factor 0 makes the timing gate unconditional once a baseline
           exists, so the test is deterministic on any machine *)
        History.set_factor h 0.;
        History.set_min_samples h 1;
        let sql = "SELECT text FROM messages" in
        ignore (query_ok e sql);
        for i = 10 to 17 do
          ignore
            (exec_ok e
               (Printf.sprintf "INSERT INTO messages VALUES (%d, 'm%d', 1)" i
                  i))
        done;
        ignore (query_ok e sql);
        let fp = Fingerprint.of_sql sql in
        let regs =
          List.filter
            (fun r -> r.History.rg_fingerprint = fp)
            (History.regressions h)
        in
        (match List.rev regs with
        | last :: _ ->
          Alcotest.(check string) "cause" "cardinality"
            (History.cause_label last.History.rg_cause);
          Alcotest.(check bool) "detail quotes the row counts" true
            (contains last.History.rg_detail "rows")
        | [] -> Alcotest.fail "grown input not flagged"));
  ]

(* ------------------------------------------------------------------ *)
(* History SQL views and export                                        *)
(* ------------------------------------------------------------------ *)

let history_views_tests =
  [
    case "perm_stat_history exposes per-execution records with phases"
      (fun () ->
        let e = forum_engine () in
        ignore (query_ok e "SELECT mid FROM messages");
        ignore (query_ok e "SELECT mid FROM messages");
        check_columns e
          "SELECT * FROM perm_stat_history WHERE fingerprint = 'select mid \
           from messages'"
          [
            "fingerprint"; "seq"; "ts"; "plan_hash"; "total_ms"; "rows";
            "est_rows"; "skew"; "error"; "analyze_ms"; "rewrite_ms";
            "optimize_ms"; "execute_ms";
          ];
        check_rows e
          "SELECT rows, error FROM perm_stat_history WHERE fingerprint = \
           'select mid from messages'"
          [ [ "2"; "false" ]; [ "2"; "false" ] ];
        (* the view is an ordinary relation: aggregable and joinable *)
        let rs =
          query_ok e
            "SELECT fingerprint, count(*) FROM perm_stat_history GROUP BY \
             fingerprint ORDER BY fingerprint"
        in
        Alcotest.(check bool) "grouped rows" true
          (List.length rs.Engine.rows >= 1));
    case "perm_metrics_history samples tracked series on a cadence" (fun () ->
        let e = engine () in
        let h = Engine.history e in
        History.set_cadence h 0.;
        ignore (exec_ok e "CREATE TABLE t (a int)");
        ignore (exec_ok e "INSERT INTO t VALUES (1)");
        let samples = History.metric_samples h in
        Alcotest.(check bool) "engine.statements sampled" true
          (List.exists
             (fun s -> s.History.sm_name = "engine.statements")
             samples);
        Alcotest.(check bool) "gc.heap_words sampled" true
          (List.exists
             (fun s -> s.History.sm_name = "gc.heap_words")
             samples);
        let rs =
          query_ok e
            "SELECT value FROM perm_metrics_history WHERE name = \
             'engine.statements' ORDER BY seq"
        in
        Alcotest.(check bool) "view rows present" true
          (List.length rs.Engine.rows >= 2);
        (* a counter series is monotone *)
        ignore
          (List.fold_left
            (fun prev r ->
              match r.(0) with
              | Perm_value.Value.Float v ->
                Alcotest.(check bool) "monotone counter" true (v >= prev);
                v
              | _ -> Alcotest.fail "value not a float")
            0. rs.Engine.rows));
    case "telemetry export emits parseable tagged JSON lines" (fun () ->
        let e = forum_engine () in
        let h = Engine.history e in
        History.set_cadence h 0.;
        ignore (query_ok e "SELECT mid FROM messages");
        ignore (query_ok e "SELECT mid FROM messages");
        let docs = History.export_jsonl h in
        Alcotest.(check bool) "records exported" true (List.length docs > 0);
        let kinds =
          List.filter_map
            (fun doc ->
              (* round-trip through the compact printer, like the CLI *)
              match Json.parse (Json.to_string doc) with
              | Ok parsed ->
                Option.bind (Json.member "kind" parsed) Json.to_string_opt
              | Error msg -> Alcotest.failf "line does not parse: %s" msg)
            docs
        in
        Alcotest.(check bool) "execution records tagged" true
          (List.mem "execution" kinds);
        Alcotest.(check bool) "metric samples tagged" true
          (List.mem "metric" kinds));
    case "reset_statement_stats clears the history views too" (fun () ->
        let e = forum_engine () in
        ignore (query_ok e "SELECT mid FROM messages");
        Engine.reset_statement_stats e;
        check_count e "SELECT * FROM perm_stat_history" 0;
        check_count e "SELECT * FROM perm_stat_regressions" 0);
  ]

(* ------------------------------------------------------------------ *)
(* Trace export: Chrome trace events and nesting invariants            *)
(* ------------------------------------------------------------------ *)

let span_field obj key =
  match Option.bind (Json.member key obj) Json.to_float_opt with
  | Some f -> f
  | None -> Alcotest.failf "event lacks numeric %S" key

let trace_export_tests =
  [
    case "chrome export round-trips and phases nest inside statements"
      (fun () ->
        let e = forum_engine () in
        ignore (query_ok e "SELECT text FROM messages WHERE mid = 1");
        let roots = Engine.trace_log e in
        Alcotest.(check bool) "forum load + query traced" true
          (List.length roots > 1);
        let text = Json.to_string (Trace.to_chrome_json roots) in
        let doc =
          match Json.parse text with
          | Ok doc -> doc
          | Error msg -> Alcotest.failf "export does not parse: %s" msg
        in
        let all_events =
          match Option.bind (Json.member "traceEvents" doc) Json.to_list_opt with
          | Some evs -> evs
          | None -> Alcotest.fail "no traceEvents array"
        in
        (* lane-name metadata events ("M") carry no interval; the timing
           invariants below apply to complete ("X") events only *)
        let events =
          List.filter
            (fun ev ->
              Option.bind (Json.member "ph" ev) Json.to_string_opt = Some "X")
            all_events
        in
        Alcotest.(check bool) "one complete event per span at least" true
          (List.length events >= List.length roots);
        Alcotest.(check bool) "lane metadata present" true
          (List.exists
             (fun ev ->
               Option.bind (Json.member "ph" ev) Json.to_string_opt = Some "M")
             all_events);
        let statements, phases =
          List.partition
            (fun ev ->
              Option.bind (Json.member "name" ev) Json.to_string_opt
              = Some "statement")
            events
        in
        Alcotest.(check bool) "phase events exist" true (phases <> []);
        (* nesting invariant: every phase interval lies inside some
           statement interval *)
        List.iter
          (fun ph ->
            let ts = span_field ph "ts" and dur = span_field ph "dur" in
            let nested =
              List.exists
                (fun st ->
                  let sts = span_field st "ts" and sdur = span_field st "dur" in
                  (* tolerance: timestamps quantize to microseconds *)
                  ts >= sts -. 1. && ts +. dur <= sts +. sdur +. 1.)
                statements
            in
            Alcotest.(check bool) "phase inside a statement" true nested)
          phases;
        (* ts are relative to the earliest event, so the minimum is ~0 *)
        let min_ts =
          List.fold_left (fun acc ev -> Float.min acc (span_field ev "ts"))
            Float.infinity events
        in
        Alcotest.(check (float 1e-6)) "relative timestamps" 0. min_ts);
    case "parallel runs export one named lane per worker domain" (fun () ->
        let e = forum_engine () in
        Engine.set_parallel e (Engine.Par_domains 2);
        Engine.set_parallel_threshold e 1;
        Engine.set_morsel_rows e 1;
        ignore (query_ok e "SELECT mid, text FROM messages WHERE mid >= 0");
        Engine.close e;
        let text = Json.to_string (Trace.to_chrome_json (Engine.trace_log e)) in
        let doc =
          match Json.parse text with
          | Ok doc -> doc
          | Error msg -> Alcotest.failf "export does not parse: %s" msg
        in
        let events =
          match Option.bind (Json.member "traceEvents" doc) Json.to_list_opt with
          | Some evs -> evs
          | None -> Alcotest.fail "no traceEvents array"
        in
        let lane_names =
          List.filter_map
            (fun ev ->
              if Option.bind (Json.member "ph" ev) Json.to_string_opt = Some "M"
              then
                Option.bind (Json.member "args" ev) (fun args ->
                    Option.bind (Json.member "name" args) Json.to_string_opt)
              else None)
            events
        in
        List.iter
          (fun lane ->
            Alcotest.(check bool) (lane ^ " lane present") true
              (List.mem lane lane_names))
          [ "engine"; "worker 0"; "worker 1" ];
        (* morsel slices actually land on worker lanes (tid >= 2) *)
        let worker_slices =
          List.exists
            (fun ev ->
              Option.bind (Json.member "ph" ev) Json.to_string_opt = Some "X"
              && (match Option.bind (Json.member "tid" ev) Json.to_float_opt with
                 | Some tid -> tid >= 2.
                 | None -> false))
            events
        in
        Alcotest.(check bool) "slices on worker lanes" true worker_slices);
    case "span tree nesting invariants: children within parents, in order"
      (fun () ->
        let e = forum_engine () in
        ignore (query_ok e "SELECT PROVENANCE text FROM messages");
        let root =
          match Engine.last_trace e with
          | Some r -> r
          | None -> Alcotest.fail "no trace"
        in
        let kids = Trace.children root in
        Alcotest.(check (list string)) "pipeline phases in start order"
          [ "analyze"; "rewrite"; "optimize"; "execute" ]
          (List.map Trace.name kids);
        (* each child starts after its predecessor and inside the root *)
        let root_start = Trace.start_s root in
        let root_end = root_start +. (Trace.duration_ms root /. 1000.) in
        ignore
          (List.fold_left
             (fun prev sp ->
               let s = Trace.start_s sp in
               Alcotest.(check bool) "starts after predecessor" true (s >= prev);
               Alcotest.(check bool) "starts inside root" true
                 (s >= root_start && s <= root_end);
               Alcotest.(check bool) "ends inside root" true
                 (s +. (Trace.duration_ms sp /. 1000.) <= root_end +. 1e-6);
               s)
             root_start kids));
  ]

(* ------------------------------------------------------------------ *)
(* Event log                                                           *)
(* ------------------------------------------------------------------ *)

let eventlog_tests =
  [
    case "slow-query log writes parseable JSON lines past the threshold"
      (fun () ->
        let e = forum_engine () in
        let path = Filename.temp_file "perm_events" ".jsonl" in
        Eventlog.open_file (Engine.event_log e) path;
        Eventlog.set_min_ms (Engine.event_log e) 0.;
        ignore (query_ok e "SELECT text FROM messages WHERE mid = 1");
        (* a threshold far above any statement: nothing more is logged *)
        Eventlog.set_min_ms (Engine.event_log e) 1e9;
        ignore (query_ok e "SELECT text FROM messages WHERE mid = 2");
        Eventlog.close (Engine.event_log e);
        let lines =
          In_channel.with_open_text path In_channel.input_lines
          |> List.filter (fun l -> String.trim l <> "")
        in
        Sys.remove path;
        Alcotest.(check int) "exactly one event" 1 (List.length lines);
        let doc =
          match Json.parse (List.hd lines) with
          | Ok doc -> doc
          | Error msg -> Alcotest.failf "line does not parse: %s" msg
        in
        Alcotest.(check (option string)) "sql field"
          (Some "SELECT text FROM messages WHERE mid = 1")
          (Option.bind (Json.member "sql" doc) Json.to_string_opt);
        Alcotest.(check bool) "phases object present" true
          (Json.member "phases" doc <> None));
    case "in-memory ring records without a sink, bounded with drops"
      (fun () ->
        let l = Eventlog.create () in
        Eventlog.set_capacity l 3;
        for i = 1 to 5 do
          Eventlog.log l (Json.Obj [ ("n", Json.Int i) ])
        done;
        let nth_n evs k =
          Option.bind (Json.member "n" (List.nth evs k)) Json.to_float_opt
          |> Option.map int_of_float
        in
        let evs = Eventlog.recent l in
        Alcotest.(check int) "ring holds capacity events" 3 (List.length evs);
        Alcotest.(check (option int)) "oldest first" (Some 3) (nth_n evs 0);
        Alcotest.(check (option int)) "newest last" (Some 5) (nth_n evs 2);
        Alcotest.(check int) "two dropped" 2 (Eventlog.dropped l);
        (* shrinking keeps the newest and counts the shed events *)
        Eventlog.set_capacity l 2;
        let evs = Eventlog.recent l in
        Alcotest.(check int) "shrunk" 2 (List.length evs);
        Alcotest.(check (option int)) "newest survive" (Some 4) (nth_n evs 0);
        Alcotest.(check int) "shed counted" 3 (Eventlog.dropped l));
    case "the engine feeds the ring even with no sink open" (fun () ->
        let e = forum_engine () in
        let before = List.length (Eventlog.recent (Engine.event_log e)) in
        ignore (query_ok e "SELECT mid FROM messages");
        let evs = Eventlog.recent (Engine.event_log e) in
        Alcotest.(check bool) "statement event recorded" true
          (List.length evs > before);
        let last = List.nth evs (List.length evs - 1) in
        Alcotest.(check (option string)) "sql field"
          (Some "SELECT mid FROM messages")
          (Option.bind (Json.member "sql" last) Json.to_string_opt));
  ]

(* ------------------------------------------------------------------ *)
(* JSON parser (bench --compare reads baselines through this)          *)
(* ------------------------------------------------------------------ *)

let json_parse_tests =
  [
    case "parse round-trips every constructor" (fun () ->
        let doc =
          Json.Obj
            [
              ("null", Json.Null);
              ("bool", Json.Bool true);
              ("int", Json.Int (-42));
              ("float", Json.Float 1.5);
              ("string", Json.String "a \"quoted\"\nline");
              ("list", Json.List [ Json.Int 1; Json.Obj []; Json.List [] ]);
            ]
        in
        match Json.parse (Json.to_string doc) with
        | Ok parsed ->
          Alcotest.(check string) "round trip" (Json.to_string doc)
            (Json.to_string parsed)
        | Error msg -> Alcotest.failf "no parse: %s" msg);
    case "pretty output parses too (BENCH_phases.json shape)" (fun () ->
        let doc =
          Json.Obj
            [
              ("suite", Json.String "perm-bench-smoke");
              ( "queries",
                Json.List
                  [
                    Json.Obj
                      [
                        ("name", Json.String "SPJ");
                        ("total_ms", Json.Float 1.25);
                        ( "phases",
                          Json.Obj [ ("execute", Json.Float 1.1) ] );
                      ];
                  ] );
            ]
        in
        match Json.parse (Json.to_pretty_string doc) with
        | Ok parsed ->
          let total =
            Option.bind (Json.member "queries" parsed) Json.to_list_opt
            |> Option.map List.hd
            |> Fun.flip Option.bind (Json.member "total_ms")
            |> Fun.flip Option.bind Json.to_float_opt
          in
          Alcotest.(check (option (float 1e-9))) "member chain" (Some 1.25) total
        | Error msg -> Alcotest.failf "no parse: %s" msg);
    case "malformed documents are rejected" (fun () ->
        List.iter
          (fun text ->
            match Json.parse text with
            | Ok _ -> Alcotest.failf "accepted %S" text
            | Error _ -> ())
          [ "{"; "[1,"; "\"unterminated"; "{} trailing"; "{1: 2}"; "nulll" ]);
  ]

(* ------------------------------------------------------------------ *)
(* Quantiles in dumps                                                  *)
(* ------------------------------------------------------------------ *)

let quantile_dump_tests =
  [
    case "text and JSON histogram dumps carry p50/p95/p99" (fun () ->
        let m = Metrics.create () in
        for i = 1 to 100 do
          Metrics.observe ~bounds:[| 10.; 50.; 90. |] m "lat" (float_of_int i)
        done;
        let text = Metrics.dump_text m in
        Alcotest.(check bool) "p99 in text" true (contains text "p99<=");
        let json = Metrics.to_json m in
        let hist = Option.get (Json.member "lat" json) in
        let q name =
          Option.bind (Json.member name hist) Json.to_float_opt |> Option.get
        in
        Alcotest.(check (float 1e-9)) "p50 bucket bound" 50. (q "p50");
        Alcotest.(check (float 1e-9)) "p95 clamped to max" 100. (q "p95");
        Alcotest.(check bool) "p99 >= p95 - monotone" true (q "p99" >= q "p95"));
  ]

let () =
  Alcotest.run "telemetry"
    [
      ("fingerprint", fingerprint_tests);
      ("stat_statements", stat_statements_tests);
      ("system_views", other_views_tests);
      ("profiler_views", profiler_views_tests);
      ("history", history_tests);
      ("watchdog", watchdog_detection_tests);
      ("history_views", history_views_tests);
      ("trace_export", trace_export_tests);
      ("eventlog", eventlog_tests);
      ("json_parse", json_parse_tests);
      ("quantiles", quantile_dump_tests);
    ]
