(* Robustness: the typed error taxonomy, the resource governor
   (statement_timeout / row_limit / tuple_budget / manual cancel) and
   graceful degradation of the parallel executor.

   The governor acceptance bar: an armed statement_timeout must kill a
   long provenance self-join within 2x the configured bound, in serial
   AND parallel execution, with the kill visible as a typed [Timeout]
   error, an [engine.timeout] counter, and a pool that stays reusable. *)

module Engine = Perm_engine.Engine
module Metrics = Perm_obs.Metrics
module Err = Perm_err
module Fault = Perm_fault
open Perm_testkit.Kit

let domains =
  match Sys.getenv_opt "PERM_PARALLEL" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 2)
  | None -> 2

let go_parallel e =
  Engine.set_parallel e (Engine.Par_domains domains);
  Engine.set_parallel_threshold e 1;
  Engine.set_morsel_rows e 64

let kind_testable =
  Alcotest.testable
    (fun fmt k -> Format.pp_print_string fmt (Err.kind_label k))
    ( = )

(* Run through the typed surface; fail the test on Ok. *)
let exec_err e sql =
  match Engine.execute_err e sql with
  | Ok _ -> Alcotest.failf "expected an error on %S" sql
  | Error err -> err

let check_kind e sql kind =
  let err = exec_err e sql in
  Alcotest.(check kind_testable)
    (Printf.sprintf "%s [kind, got %S]" sql err.Err.msg)
    kind err.Err.kind

let counter e name = Metrics.counter (Engine.metrics e) name

let forum_scaled ?(messages = 300) ?(users = 3) () =
  let e = engine () in
  Perm_workload.Forum.load_scaled e ~messages ~users ();
  e

(* Expensive equality self-join: with few users every message matches a
   third of the table, so the probe side grows quadratically — morsel
   eligible, and far slower than any timeout bound used below. *)
let heavy_join =
  "SELECT PROVENANCE m1.text, m2.text FROM messages m1, messages m2 WHERE \
   m1.uid = m2.uid"

(* Cross product for the serial-only tests (nested loop, not morsel
   eligible, runs for seconds if never killed). *)
let heavy_cross =
  "SELECT m1.mid + m2.mid + m3.mid FROM messages m1, messages m2, messages m3"

let suite_kinds =
  [
    case "malformed SQL is Parse" (fun () ->
        let e = forum_engine () in
        check_kind e "SELEKT 1 FORM messages" Err.Parse;
        check_kind e "SELECT * FROM" Err.Parse;
        check_kind e "SELECT ((1 + 2 FROM messages" Err.Parse);
    case "unknown relation / attribute is Analyze" (fun () ->
        let e = forum_engine () in
        check_kind e "SELECT * FROM nosuch" Err.Analyze;
        check_kind e "SELECT nosuch FROM messages" Err.Analyze;
        check_kind e "INSERT INTO nosuch VALUES (1)" Err.Analyze;
        check_kind e "DROP TABLE nosuch" Err.Analyze);
    case "data errors are Runtime" (fun () ->
        let e = forum_engine () in
        check_kind e "SELECT mid / (mid - mid) FROM messages" Err.Runtime;
        check_kind e "SELECT CAST(text AS int) FROM messages" Err.Runtime;
        (* scalar subquery returning several rows is only detectable when
           the data flows *)
        check_kind e
          "SELECT (SELECT mid FROM messages) FROM users" Err.Runtime);
    case "transaction misuse is Runtime" (fun () ->
        let e = forum_engine () in
        check_kind e "COMMIT" Err.Runtime;
        check_kind e "ROLLBACK" Err.Runtime;
        ignore (exec_ok e "BEGIN");
        check_kind e "BEGIN" Err.Runtime;
        ignore (exec_ok e "ROLLBACK"));
    case "NULL-in-aggregate edges succeed per SQL semantics" (fun () ->
        let e = engine () in
        exec_all e
          [
            "CREATE TABLE t (a int)";
            "INSERT INTO t VALUES (NULL)";
            "INSERT INTO t VALUES (NULL)";
          ];
        (* aggregates over all-NULL and empty inputs are NULL (count is 0),
           never an error *)
        check_rows e "SELECT sum(a), avg(a), min(a), max(a) FROM t"
          [ [ "null"; "null"; "null"; "null" ] ];
        check_rows e "SELECT count(a), count(*) FROM t" [ [ "0"; "2" ] ];
        check_rows e "SELECT sum(a) FROM t WHERE a > 0" [ [ "null" ] ]);
    case "execute keeps the legacy bare-message surface" (fun () ->
        let e = forum_engine () in
        let typed = exec_err e "SELECT * FROM nosuch" in
        match Engine.execute e "SELECT * FROM nosuch" with
        | Ok _ -> Alcotest.fail "expected an error"
        | Error msg ->
          Alcotest.(check string) "to_string shim" (Err.to_string typed) msg);
    case "describe tags governor kinds only" (fun () ->
        Alcotest.(check string)
          "parse stays bare" "boom"
          (Err.describe (Err.parse "boom"));
        Alcotest.(check string)
          "timeout is tagged" "timeout: boom"
          (Err.describe (Err.timeout "boom"));
        Alcotest.(check bool)
          "governor kinds retryable" true
          (Err.retryable (Err.timeout "x") && Err.retryable (Err.faulted "x"));
        Alcotest.(check bool)
          "parse not retryable" false
          (Err.retryable (Err.parse "x")));
  ]

(* Fuzz: the engine boundary must map every failure into a typed error —
   [execute_err] never raises, whatever token soup comes in. *)
let soup_tokens =
  [|
    "SELECT"; "PROVENANCE"; "FROM"; "WHERE"; "GROUP"; "BY"; "ORDER"; "LIMIT";
    "INSERT"; "INTO"; "VALUES"; "UPDATE"; "SET"; "DELETE"; "JOIN"; "ON";
    "LEFT"; "UNION"; "ALL"; "DISTINCT"; "AS"; "AND"; "OR"; "NOT"; "NULL";
    "CASE"; "WHEN"; "THEN"; "END"; "EXISTS"; "IN"; "BEGIN"; "COMMIT";
    "ROLLBACK"; "CREATE"; "TABLE"; "VIEW"; "DROP"; "messages"; "users";
    "mid"; "uid"; "text"; "name"; "m"; "u"; "count"; "sum"; "avg"; "*"; ",";
    "("; ")"; ";"; "="; "<"; ">"; "+"; "-"; "/"; "%"; "'x'"; "'"; "\"";
    "1"; "0"; "42"; "1.5"; "$1"; "@"; "#"; "\\"; "\xc3\xa9"; "\x00";
  |]

let gen_soup =
  QCheck.Gen.(
    let token = map (Array.get soup_tokens) (int_bound (Array.length soup_tokens - 1)) in
    map (String.concat " ") (list_size (int_range 1 25) token))

let arb_soup = QCheck.make ~print:(Printf.sprintf "%S") gen_soup

let suite_fuzz =
  [
    qcheck
      (QCheck.Test.make ~name:"execute_err never raises on token soup"
         ~count:300 arb_soup (fun sql ->
           let e = forum_engine () in
           (match Engine.execute_err e sql with Ok _ | Error _ -> ());
           (* and the session survives to run a real statement (one no DDL
              soup can have invalidated) *)
           match Engine.execute_err e "SELECT 1" with
           | Ok _ -> true
           | Error err -> QCheck.Test.fail_reportf "session broken: %s" err.Err.msg));
  ]

let expect_timeout e ~bound_ms sql =
  Engine.set_statement_timeout e bound_ms;
  let t0 = Unix.gettimeofday () in
  let err = exec_err e sql in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Engine.set_statement_timeout e 0.;
  Alcotest.(check kind_testable) "killed with Timeout" Err.Timeout err.Err.kind;
  Alcotest.(check bool)
    (Printf.sprintf "killed within 2x bound (%.0f ms <= %.0f ms)" elapsed_ms
       (2. *. bound_ms))
    true
    (elapsed_ms <= 2. *. bound_ms)

let suite_governor =
  [
    case "statement_timeout kills a serial self-join within 2x bound"
      (fun () ->
        let e = forum_scaled ~messages:400 () in
        expect_timeout e ~bound_ms:250. heavy_cross;
        Alcotest.(check bool) "engine.timeout counter" true
          (counter e "engine.timeout" >= 1);
        (* the kill is queryable through the perm_metrics system view *)
        check_rows e
          "SELECT value FROM perm_metrics WHERE name = 'engine.timeout'"
          [ [ "1.0" ] ];
        (* the session is fine afterwards *)
        ignore (query_ok e "SELECT count(*) FROM messages"));
    case "statement_timeout kills a parallel self-join; pool survives"
      (fun () ->
        let e = forum_scaled ~messages:3000 () in
        go_parallel e;
        expect_timeout e ~bound_ms:400. heavy_join;
        Alcotest.(check bool) "engine.timeout counter" true
          (counter e "engine.timeout" >= 1);
        Alcotest.(check int) "worker pool was created and survives" domains
          (Engine.pool_size e);
        (* the generation drained: the pool still answers parallel queries *)
        ignore (query_ok e "SELECT mid, text FROM messages WHERE mid >= 0");
        Alcotest.(check int) "pool reused after the kill" domains
          (Engine.pool_size e);
        Engine.close e);
    case "row_limit kills past the cap with Resource_exhausted" (fun () ->
        let e = forum_scaled () in
        Engine.set_row_limit e 10;
        check_kind e "SELECT * FROM messages" Err.Resource_exhausted;
        Alcotest.(check bool) "engine.resource_exhausted counter" true
          (counter e "engine.resource_exhausted" >= 1);
        (* under the cap passes untouched — a kill switch, not a LIMIT *)
        check_count e "SELECT * FROM messages LIMIT 5" 5;
        Engine.set_row_limit e 0;
        ignore (query_ok e "SELECT * FROM messages"));
    case "row_limit is enforced on the parallel path too" (fun () ->
        let e = forum_scaled () in
        go_parallel e;
        Engine.set_row_limit e 10;
        check_kind e "SELECT mid, text FROM messages WHERE mid >= 0"
          Err.Resource_exhausted;
        Engine.set_row_limit e 0;
        ignore (query_ok e "SELECT mid, text FROM messages WHERE mid >= 0");
        Engine.close e);
    case "tuple_budget kills tuple-hungry statements" (fun () ->
        let e = forum_scaled ~messages:2000 () in
        (* spill off turns the budget back into a hard kill switch *)
        Engine.set_spill e false;
        Engine.set_tuple_budget e 1000;
        check_kind e "SELECT count(*) FROM messages" Err.Resource_exhausted;
        Engine.set_tuple_budget e 0;
        ignore (query_ok e "SELECT count(*) FROM messages"));
    case "manual cancel from another domain lands as Cancelled" (fun () ->
        let e = forum_scaled ~messages:400 () in
        (* an armed (generous) timeout switches the per-operator guard on,
           which is also where a manual cancel is noticed *)
        Engine.set_statement_timeout e 60_000.;
        let canceller =
          Domain.spawn (fun () ->
              Unix.sleepf 0.05;
              Engine.cancel e "killed by test")
        in
        let err = exec_err e heavy_cross in
        Domain.join canceller;
        Engine.set_statement_timeout e 0.;
        Alcotest.(check kind_testable) "Cancelled" Err.Cancelled err.Err.kind;
        Alcotest.(check bool) "engine.cancelled counter" true
          (counter e "engine.cancelled" >= 1);
        ignore (query_ok e "SELECT count(*) FROM messages"));
  ]

let suite_degradation =
  [
    case "poisoned parallel run degrades to a serial retry" (fun () ->
        let e = forum_scaled () in
        go_parallel e;
        let sql = "SELECT mid, text FROM messages WHERE mid >= 0" in
        Engine.set_parallel e Engine.Par_off;
        let expected = strings_of_rows (query_ok e sql).Engine.rows in
        go_parallel e;
        Fault.set "pool.dispatch" 1.0;
        let rows = strings_of_rows (query_ok e sql).Engine.rows in
        Fault.reset ();
        Alcotest.(check rows_testable) "serial retry returns the right rows"
          expected rows;
        Alcotest.(check bool) "degradation counted" true
          (counter e "executor.par.degraded" >= 1);
        Alcotest.(check bool) "fallback.error counted" true
          (counter e "executor.par.fallback.error" >= 1);
        Alcotest.(check bool) "injection visible in metrics" true
          (counter e "fault.injected.pool.dispatch" >= 1);
        (* the poisoned generation drained; the same pool keeps working *)
        Alcotest.(check int) "pool intact" domains (Engine.pool_size e);
        ignore (query_ok e sql);
        Engine.close e);
    case "failed statement inside a transaction leaves the snapshot intact"
      (fun () ->
        let e = forum_engine () in
        let base = (query_ok e "SELECT count(*) FROM messages").Engine.rows in
        ignore (exec_ok e "BEGIN");
        ignore (exec_ok e "INSERT INTO messages VALUES (100, 'tmp', 1)");
        check_kind e "SELECT mid / (mid - mid) FROM messages" Err.Runtime;
        (* still inside the transaction, uncommitted work still visible *)
        check_kind e "BEGIN" Err.Runtime;
        check_count e "SELECT * FROM messages WHERE mid = 100" 1;
        ignore (exec_ok e "ROLLBACK");
        check_count e "SELECT * FROM messages WHERE mid = 100" 0;
        Alcotest.(check rows_testable) "pre-BEGIN state restored"
          (strings_of_rows base)
          (strings_of_rows
             (query_ok e "SELECT count(*) FROM messages").Engine.rows));
  ]

let () =
  Alcotest.run "robustness"
    [
      ("kinds", suite_kinds);
      ("fuzz", suite_fuzz);
      ("governor", suite_governor);
      ("degradation", suite_degradation);
    ]
