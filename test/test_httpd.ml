(* The HTTP observability plane: Prometheus exposition correctness (label
   escaping, histogram bucket invariants, the round-trip parser CI uses),
   the embedded server end to end over real sockets, SSE streaming of the
   eventlog and live progress, graceful shutdown, and the connection cap. *)

open Perm_testkit.Kit
module Metrics = Perm_obs.Metrics
module Prometheus = Perm_obs.Prometheus
module Httpd = Perm_obs.Httpd
module Json = Perm_obs.Json
module Eventlog = Perm_obs.Eventlog
module History = Perm_obs.History
module Obs_server = Perm_engine.Obs_server

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let ok_or_fail what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s failed: %s" what msg

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

let test_render_basics () =
  let m = Metrics.create () in
  Metrics.incr ~by:3 m "engine.statements";
  Metrics.set_gauge m "executor.par.skew" 1.25;
  let text = Prometheus.render_metrics m in
  Alcotest.(check bool) "counter sample"
    true (contains ~needle:"perm_engine_statements_total 3" text);
  Alcotest.(check bool) "counter TYPE line"
    true (contains ~needle:"# TYPE perm_engine_statements counter" text);
  Alcotest.(check bool) "gauge sample"
    true (contains ~needle:"perm_executor_par_skew 1.25" text);
  let n = ok_or_fail "validate" (Prometheus.validate text) in
  Alcotest.(check int) "two samples" 2 n

let test_histogram_exposition () =
  let m = Metrics.create () in
  Metrics.observe ~bounds:[| 1.; 10.; 100. |] m "engine.statement.ms" 0.5;
  Metrics.observe ~bounds:[| 1.; 10.; 100. |] m "engine.statement.ms" 5.;
  Metrics.observe ~bounds:[| 1.; 10.; 100. |] m "engine.statement.ms" 5000.;
  let text = Prometheus.render_metrics m in
  ignore (ok_or_fail "validate" (Prometheus.validate text));
  let parsed = ok_or_fail "parse" (Prometheus.parse text) in
  let bucket le =
    List.find_opt
      (fun (s : Prometheus.sample) ->
        s.Prometheus.s_name = "perm_engine_statement_ms_bucket"
        && List.assoc_opt "le" s.Prometheus.s_labels = Some le)
      parsed.Prometheus.p_samples
  in
  let value = function
    | Some (s : Prometheus.sample) -> s.Prometheus.s_value
    | None -> Alcotest.fail "missing bucket"
  in
  Alcotest.(check (float 0.)) "le=1 cumulative" 1. (value (bucket "1"));
  Alcotest.(check (float 0.)) "le=10 cumulative" 2. (value (bucket "10"));
  Alcotest.(check (float 0.)) "le=100 cumulative" 2. (value (bucket "100"));
  Alcotest.(check (float 0.)) "+Inf terminal" 3. (value (bucket "+Inf"));
  let sum =
    List.find
      (fun (s : Prometheus.sample) ->
        s.Prometheus.s_name = "perm_engine_statement_ms_sum")
      parsed.Prometheus.p_samples
  in
  Alcotest.(check (float 0.001)) "sum" 5005.5 sum.Prometheus.s_value

let test_label_escaping_roundtrip () =
  let nasty = "has \"quotes\", a \\ backslash and\na newline" in
  let family =
    {
      Prometheus.f_name = "perm_test_family";
      f_help = "escaping";
      f_kind = Prometheus.Counter;
      f_samples =
        [
          {
            Prometheus.s_name = "perm_test_family_total";
            s_labels = [ ("query", nasty); ("fingerprint", "fp1") ];
            s_value = 7.;
          };
        ];
    }
  in
  let text = Prometheus.render [ family ] in
  (* escaped on the wire... *)
  Alcotest.(check bool) "backslash escaped"
    true (contains ~needle:{|a \\ backslash|} text);
  Alcotest.(check bool) "quote escaped"
    true (contains ~needle:{|\"quotes\"|} text);
  Alcotest.(check bool) "newline escaped"
    true (contains ~needle:{|and\na newline|} text);
  (* ...and restored by the parser *)
  let parsed = ok_or_fail "parse" (Prometheus.parse text) in
  match parsed.Prometheus.p_samples with
  | [ s ] ->
    Alcotest.(check (option string)) "label round-trips"
      (Some nasty)
      (List.assoc_opt "query" s.Prometheus.s_labels);
    Alcotest.(check (float 0.)) "value" 7. s.Prometheus.s_value
  | l -> Alcotest.failf "expected 1 sample, got %d" (List.length l)

let test_validator_rejections () =
  let reject what text =
    match Prometheus.validate text with
    | Ok _ -> Alcotest.failf "validator accepted %s" what
    | Error _ -> ()
  in
  reject "non-monotone buckets"
    "# TYPE perm_h histogram\n\
     perm_h_bucket{le=\"1\"} 5\n\
     perm_h_bucket{le=\"10\"} 3\n\
     perm_h_bucket{le=\"+Inf\"} 5\n\
     perm_h_sum 1\n\
     perm_h_count 5\n";
  reject "missing +Inf bucket"
    "# TYPE perm_h histogram\n\
     perm_h_bucket{le=\"1\"} 1\n\
     perm_h_sum 1\n\
     perm_h_count 1\n";
  reject "+Inf disagrees with _count"
    "# TYPE perm_h histogram\n\
     perm_h_bucket{le=\"+Inf\"} 4\n\
     perm_h_sum 1\n\
     perm_h_count 5\n";
  reject "duplicate sample" "perm_x 1\nperm_x 2\n";
  reject "bad metric name" "0bad 1\n";
  reject "counter without _total"
    "# TYPE perm_c counter\nperm_c 1\n";
  (* and a well-formed histogram passes *)
  ignore
    (ok_or_fail "well-formed histogram"
       (Prometheus.validate
          "# TYPE perm_h histogram\n\
           perm_h_bucket{le=\"1\"} 1\n\
           perm_h_bucket{le=\"+Inf\"} 2\n\
           perm_h_sum 3.5\n\
           perm_h_count 2\n"))

let test_registry_roundtrip () =
  (* a real engine's registry after real statements, rendered and parsed
     back: every sample survives, histograms keep their invariants *)
  let e = forum_engine () in
  ignore (exec_ok e "SELECT * FROM messages");
  ignore (exec_ok e "SELECT PROVENANCE text FROM messages");
  ignore (query_err e "SELECT nope FROM missing");
  let text = Prometheus.render_metrics (Engine.metrics e) in
  let n = ok_or_fail "validate real registry" (Prometheus.validate text) in
  Alcotest.(check bool) "has a useful number of samples" true (n > 20);
  Alcotest.(check bool) "statement histogram present"
    true (contains ~needle:"perm_engine_statement_ms_bucket" text);
  Engine.close e

(* ------------------------------------------------------------------ *)
(* The /metrics handler over an engine (no socket)                     *)
(* ------------------------------------------------------------------ *)

let fake_get path =
  { Httpd.rq_method = "GET"; rq_path = path; rq_query = [] }

let handler_body e path =
  match Obs_server.handler e (fake_get path) with
  | Httpd.Fixed { status; body; _ } -> (status, body)
  | Httpd.Stream _ -> Alcotest.fail "expected a fixed response"

let test_metrics_handler () =
  let e = forum_engine () in
  (* SQL with quotes/backslashes lands in the per-fingerprint family's
     query label — escaping is load-bearing, not decorative *)
  ignore (exec_ok e {|SELECT text FROM messages WHERE text <> 'a "quoted" \ thing'|});
  ignore (exec_ok e "SELECT * FROM users");
  let status, body = handler_body e "/metrics" in
  Alcotest.(check int) "200" 200 status;
  ignore (ok_or_fail "validate handler output" (Prometheus.validate body));
  Alcotest.(check bool) "per-fingerprint family"
    true (contains ~needle:"perm_stat_statements_calls_total{fingerprint=" body);
  Alcotest.(check bool) "loss gauges exported"
    true (contains ~needle:"perm_eventlog_dropped" body);
  Alcotest.(check bool) "history eviction gauge exported"
    true (contains ~needle:"perm_history_evicted" body);
  Engine.close e

let test_stats_handler () =
  let e = forum_engine () in
  ignore (exec_ok e "SELECT * FROM messages");
  let status, body = handler_body e "/stats/perm_stat_statements" in
  Alcotest.(check int) "200" 200 status;
  let json = ok_or_fail "json parses" (Json.parse body) in
  (match Json.member "count" json with
  | Some (Json.Int n) -> Alcotest.(check bool) "rows present" true (n >= 1)
  | _ -> Alcotest.fail "no count field");
  let status404, body404 = handler_body e "/stats/not_a_relation" in
  Alcotest.(check int) "unknown relation is 404" 404 status404;
  Alcotest.(check bool) "404 lists valid relations"
    true (contains ~needle:"perm_stat_statements" body404);
  Engine.close e

(* ------------------------------------------------------------------ *)
(* End to end over sockets                                             *)
(* ------------------------------------------------------------------ *)

let with_server e f =
  let srv = ok_or_fail "start server" (Obs_server.start ~port:0 e) in
  Fun.protect ~finally:(fun () -> Obs_server.stop srv) (fun () -> f srv)

let get_ok port path =
  let status, body = ok_or_fail ("GET " ^ path) (Httpd.get ~port path) in
  Alcotest.(check int) ("GET " ^ path ^ " status") 200 status;
  body

let test_server_endpoints () =
  let e = forum_engine () in
  ignore (exec_ok e "SELECT * FROM messages");
  ignore (exec_ok e "SELECT PROVENANCE text FROM messages");
  with_server e (fun srv ->
      let port = Obs_server.port srv in
      let metrics = get_ok port "/metrics" in
      ignore (ok_or_fail "scrape validates" (Prometheus.validate metrics));
      Alcotest.(check bool) "server accounts for itself"
        true (contains ~needle:"perm_http_requests_total" metrics);
      let health = ok_or_fail "healthz json" (Json.parse (get_ok port "/healthz")) in
      (match Json.member "status" health with
      | Some (Json.String "ok") -> ()
      | _ -> Alcotest.fail "healthz status not ok");
      (match Json.member "statements" health with
      | Some (Json.Int n) -> Alcotest.(check bool) "statements counted" true (n >= 2)
      | _ -> Alcotest.fail "healthz has no statements field");
      let ready = ok_or_fail "readyz json" (Json.parse (get_ok port "/readyz")) in
      (match Json.member "governor" ready with
      | Some (Json.Obj _) -> ()
      | _ -> Alcotest.fail "readyz has no governor object");
      let stats =
        ok_or_fail "stats json" (Json.parse (get_ok port "/stats/perm_metrics"))
      in
      (match Json.member "count" stats with
      | Some (Json.Int n) -> Alcotest.(check bool) "metrics rows" true (n > 5)
      | _ -> Alcotest.fail "stats count missing");
      let trace = get_ok port "/trace" in
      ignore (ok_or_fail "trace json" (Json.parse trace));
      Alcotest.(check bool) "chrome trace events"
        true (contains ~needle:"traceEvents" trace);
      let idx = get_ok port "/" in
      Alcotest.(check bool) "index lists /metrics" true (contains ~needle:"/metrics" idx);
      (match Httpd.get ~port "/definitely/not/here" with
      | Ok (404, _) -> ()
      | Ok (st, _) -> Alcotest.failf "expected 404, got %d" st
      | Error msg -> Alcotest.failf "404 request failed: %s" msg));
  Engine.close e

let test_sse_replay_and_progress () =
  let e = engine () in
  Perm_workload.Forum.load_scaled e ~messages:800 ~users:40 ();
  ignore (exec_ok e "SELECT mid FROM messages WHERE mid % 2 = 0");
  with_server e (fun srv ->
      let port = Obs_server.port srv in
      (* stream on another domain while this one keeps executing, so the
         tail sees events logged after the replay *)
      let streamer =
        Domain.spawn (fun () -> Httpd.get ~port "/events?max_ms=1200")
      in
      for _ = 1 to 6 do
        ignore
          (exec_ok e
             "SELECT m1.mid FROM messages m1, messages m2 WHERE m1.mid = \
              m2.mid AND m1.mid % 7 = 0")
      done;
      let body =
        match Domain.join streamer with
        | Ok (200, body) -> body
        | Ok (st, _) -> Alcotest.failf "SSE status %d" st
        | Error msg -> Alcotest.failf "SSE failed: %s" msg
      in
      Alcotest.(check bool) "sse preamble" true (contains ~needle:"retry:" body);
      Alcotest.(check bool) "statement events streamed"
        true (contains ~needle:"event: statement" body);
      Alcotest.(check bool) "progress events streamed"
        true (contains ~needle:"event: progress" body);
      Alcotest.(check bool) "progress carries row counts"
        true (contains ~needle:"\"rows\":" body));
  Engine.close e

let test_sse_anomaly_frames () =
  let e = forum_engine () in
  (* one anomaly before the stream opens (replayed from the ring) *)
  ignore (query_err e "SELECT replayed FROM nowhere");
  with_server e (fun srv ->
      let port = Obs_server.port srv in
      let streamer =
        Domain.spawn (fun () -> Httpd.get ~port "/events?max_ms=1200")
      in
      Unix.sleepf 0.3;
      (* and one while it is tailing *)
      ignore (query_err e "SELECT live FROM nowhere");
      let body =
        match Domain.join streamer with
        | Ok (200, body) -> body
        | Ok (st, _) -> Alcotest.failf "SSE status %d" st
        | Error msg -> Alcotest.failf "SSE failed: %s" msg
      in
      Alcotest.(check bool) "anomaly frames streamed"
        true (contains ~needle:"event: anomaly" body);
      Alcotest.(check bool) "replayed anomaly present"
        true (contains ~needle:"replayed" body);
      Alcotest.(check bool) "live anomaly present"
        true (contains ~needle:"live" body);
      Alcotest.(check bool) "anomaly payload carries its class"
        true (contains ~needle:"\"class\": \"error\"" body));
  Engine.close e

let test_debug_bundles_endpoints () =
  let e = forum_engine () in
  Engine.Forensics.set_capacity e 2;
  for i = 1 to 3 do
    ignore (query_err e (Printf.sprintf "SELECT h%d FROM nowhere" i))
  done;
  with_server e (fun srv ->
      let port = Obs_server.port srv in
      let index =
        ok_or_fail "bundle index json" (Json.parse (get_ok port "/debug/bundles"))
      in
      (match Json.member "count" index with
      | Some (Json.Int n) -> Alcotest.(check int) "bounded retention" 2 n
      | _ -> Alcotest.fail "bundle index has no count");
      let newest_id =
        match Json.member "bundles" index with
        | Some (Json.List (first :: _)) -> (
          match Json.member "id" first with
          | Some (Json.Int id) -> id
          | _ -> Alcotest.fail "bundle summary has no id")
        | _ -> Alcotest.fail "bundle index empty"
      in
      Alcotest.(check int) "newest first" 3 newest_id;
      let doc =
        ok_or_fail "bundle json"
          (Json.parse (get_ok port (Printf.sprintf "/debug/bundles/%d" newest_id)))
      in
      (match Perm_obs.Bundle_schema.validate doc with
      | Ok cls -> Alcotest.(check string) "served bundle validates" "error" cls
      | Error why -> Alcotest.failf "served bundle invalid: %s" why);
      (* evicted and unknown ids are 404, not 500 *)
      (match Httpd.get ~port "/debug/bundles/1" with
      | Ok (404, _) -> ()
      | Ok (st, _) -> Alcotest.failf "evicted id: expected 404, got %d" st
      | Error msg -> Alcotest.failf "evicted id request failed: %s" msg);
      (match Httpd.get ~port "/debug/bundles/notanumber" with
      | Ok (404, _) -> ()
      | Ok (st, _) -> Alcotest.failf "bad id: expected 404, got %d" st
      | Error msg -> Alcotest.failf "bad id request failed: %s" msg);
      let idx = get_ok port "/" in
      Alcotest.(check bool) "index lists /debug/bundles"
        true (contains ~needle:"/debug/bundles" idx));
  Engine.close e

let test_wal_and_spill_gauges_always_present () =
  (* satellite: the WAL and spill families must be in every exposition —
     zeros included — so dashboards can alert without existence checks *)
  let e = forum_engine () in
  ignore (exec_ok e "SELECT * FROM messages");
  let _, body = handler_body e "/metrics" in
  ignore (ok_or_fail "exposition validates" (Prometheus.validate body));
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true
        (contains ~needle body))
    [
      "perm_executor_spill_spills";
      "perm_executor_spill_runs";
      "perm_executor_spill_bytes";
      "perm_executor_spill_fallbacks";
      "perm_wal_epoch";
      "perm_wal_replay_skipped";
      "perm_wal_replay_truncated_bytes";
    ];
  Engine.close e

let test_graceful_stop_and_restart () =
  let e = forum_engine () in
  let srv = ok_or_fail "start" (Obs_server.start ~port:0 e) in
  let port = Obs_server.port srv in
  let gen1 = Obs_server.generation srv in
  ignore (get_ok port "/healthz");
  Obs_server.stop srv;
  Obs_server.stop srv;  (* idempotent *)
  (match Httpd.get ~timeout_s:2. ~port "/healthz" with
  | Error _ -> ()
  | Ok (st, _) -> Alcotest.failf "stopped server answered with %d" st);
  (* same port is free again; the new incarnation gets a new generation *)
  let srv2 = ok_or_fail "restart" (Obs_server.start ~port e) in
  Alcotest.(check bool) "generation advanced"
    true (Obs_server.generation srv2 > gen1);
  ignore (get_ok port "/healthz");
  (* engine close drains the server via its at_close hook *)
  Engine.close e;
  (match Httpd.get ~timeout_s:2. ~port "/healthz" with
  | Error _ -> ()
  | Ok (st, _) -> Alcotest.failf "server survived engine close with %d" st)

let test_connection_cap () =
  (* a bare Httpd with one slot and a deliberately slow handler: while the
     slot is held, the next connection is turned away with 503 *)
  let slow _req =
    Httpd.Stream
      {
        content_type = "text/plain";
        write =
          (fun push ->
            ignore (push "start\n");
            Unix.sleepf 0.6;
            ignore (push "done\n"));
      }
  in
  let srv =
    ok_or_fail "start capped server" (Httpd.start ~max_connections:1 ~port:0 slow)
  in
  Fun.protect ~finally:(fun () -> Httpd.stop srv) (fun () ->
      let port = Httpd.port srv in
      let holder = Domain.spawn (fun () -> Httpd.get ~port "/hold") in
      Unix.sleepf 0.2;  (* let the holder occupy the only slot *)
      (match Httpd.get ~port "/rejected" with
      | Ok (503, _) -> ()
      | Ok (st, _) -> Alcotest.failf "expected 503 while capped, got %d" st
      | Error msg -> Alcotest.failf "capped request failed: %s" msg);
      (match Domain.join holder with
      | Ok (200, body) ->
        Alcotest.(check bool) "stream completed" true (contains ~needle:"done" body)
      | Ok (st, _) -> Alcotest.failf "holder got %d" st
      | Error msg -> Alcotest.failf "holder failed: %s" msg);
      Alcotest.(check bool) "rejection counted" true (Httpd.rejected srv >= 1);
      (* the slot frees once the connection domain runs its finalizer,
         which can lag the client seeing EOF — poll briefly *)
      let rec wait_free attempts =
        match Httpd.get ~port "/again" with
        | Ok (200, _) -> ()
        | (Ok _ | Error _) when attempts > 0 ->
          Unix.sleepf 0.1;
          wait_free (attempts - 1)
        | Ok (st, _) -> Alcotest.failf "expected 200 after drain, got %d" st
        | Error msg -> Alcotest.failf "request after drain failed: %s" msg
      in
      wait_free 20)

(* ------------------------------------------------------------------ *)
(* Satellites: eventlog cursors, streaming export, loss gauges         *)
(* ------------------------------------------------------------------ *)

let test_eventlog_since () =
  let l = Eventlog.create () in
  Eventlog.set_capacity l 3;
  for i = 1 to 5 do
    Eventlog.log l (Json.Int i)
  done;
  Alcotest.(check int) "total logged" 5 (Eventlog.logged l);
  let cursor, events = Eventlog.since l 0 in
  Alcotest.(check int) "cursor at total" 5 cursor;
  (* ring holds the newest 3; the two evicted before reading are absent *)
  Alcotest.(check int) "retained tail" 3 (List.length events);
  Alcotest.(check bool) "oldest retained is 3"
    true (List.hd events = Json.Int 3);
  let cursor2, fresh = Eventlog.since l cursor in
  Alcotest.(check int) "no new events" 0 (List.length fresh);
  Alcotest.(check int) "cursor stable" 5 cursor2;
  Eventlog.log l (Json.Int 6);
  let _, one = Eventlog.since l cursor2 in
  Alcotest.(check bool) "incremental tail" true (one = [ Json.Int 6 ])

let test_iter_export_matches_list () =
  let e = forum_engine () in
  ignore (exec_ok e "SELECT * FROM messages");
  ignore (exec_ok e "SELECT uid, count(*) FROM messages GROUP BY uid");
  ignore (query_err e "SELECT broken FROM nowhere");
  let h = Engine.history e in
  let streamed = ref [] in
  History.iter_export h (fun j -> streamed := j :: !streamed);
  let streamed = List.rev !streamed in
  let listed = History.export_jsonl h in
  Alcotest.(check int) "same record count"
    (List.length listed) (List.length streamed);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "same record" (Json.to_string a) (Json.to_string b))
    listed streamed;
  Engine.close e

let test_loss_gauges () =
  let e = forum_engine () in
  Eventlog.set_capacity (Engine.event_log e) 2;
  for _ = 1 to 5 do
    ignore (exec_ok e "SELECT mid FROM messages")
  done;
  Engine.refresh_loss_gauges e;
  let m = Engine.metrics e in
  (match Metrics.gauge m "eventlog.dropped" with
  | Some d -> Alcotest.(check bool) "ring drops surfaced" true (d >= 1.)
  | None -> Alcotest.fail "eventlog.dropped gauge missing");
  (match Metrics.gauge m "eventlog.logged" with
  | Some d -> Alcotest.(check bool) "total logged surfaced" true (d >= 5.)
  | None -> Alcotest.fail "eventlog.logged gauge missing");
  (match Metrics.gauge m "history.evicted" with
  | Some _ -> ()
  | None -> Alcotest.fail "history.evicted gauge missing");
  (* and they ride along into the exposition *)
  let _, body = handler_body e "/metrics" in
  Alcotest.(check bool) "dropped gauge in exposition"
    true (contains ~needle:"perm_eventlog_dropped" body);
  Engine.close e

let () =
  Alcotest.run "httpd"
    [
      ( "prometheus",
        [
          case "render basics" test_render_basics;
          case "histogram cumulative buckets and +Inf" test_histogram_exposition;
          case "label escaping round-trip" test_label_escaping_roundtrip;
          case "validator rejections" test_validator_rejections;
          case "real registry round-trip" test_registry_roundtrip;
        ] );
      ( "handlers",
        [
          case "/metrics with per-fingerprint families" test_metrics_handler;
          case "/stats JSON and 404" test_stats_handler;
        ] );
      ( "server",
        [
          case "endpoints end to end" test_server_endpoints;
          case "SSE replay + live progress" test_sse_replay_and_progress;
          case "SSE anomaly frames, replayed and live" test_sse_anomaly_frames;
          case "/debug/bundles index, fetch, 404s" test_debug_bundles_endpoints;
          case "WAL + spill gauges always in /metrics"
            test_wal_and_spill_gauges_always_present;
          case "graceful stop, restart, engine close" test_graceful_stop_and_restart;
          case "connection cap 503" test_connection_cap;
        ] );
      ( "satellites",
        [
          case "eventlog since cursors" test_eventlog_since;
          case "iter_export matches export_jsonl" test_iter_export_matches_list;
          case "telemetry loss gauges" test_loss_gauges;
        ] );
    ]
