(* Graceful spill-to-disk: when a statement's working set crosses the
   tuple budget and spill is on (the default), hash-join builds go
   through chunked disk partitions and sort materializations through an
   external merge — and the results must be BYTE-IDENTICAL to the
   in-memory path, across batch sizes and serial/parallel execution
   (the parallel path falls back to the serial spilling path).

   With spill off the budget reverts to a hard [Resource_exhausted]
   kill — the pre-spill governor contract, still exercised by
   test_robustness. *)

module Engine = Perm_engine.Engine
module Metrics = Perm_obs.Metrics
module Spill = Perm_storage.Spill
module Err = Perm_err
open Perm_testkit.Kit

let domains = 2

let forum_scaled ?(messages = 600) ?(users = 6) () =
  let e = engine () in
  Perm_workload.Forum.load_scaled e ~messages ~users ();
  e

(* Every shape that can hit a spill point: sort materialization (ORDER
   BY, also with duplicate keys so run-merge stability shows), hash-join
   build, LEFT JOIN (the matched-bitmap pad path), join + sort combined,
   and a provenance rewrite (wide tuples through both). *)
let battery =
  [
    "SELECT mid, text FROM messages ORDER BY text DESC, mid";
    "SELECT uid, mid FROM messages ORDER BY uid";
    "SELECT m.text, u.name FROM messages m, users u WHERE m.uid = u.uid";
    "SELECT m.mid, u.name FROM messages m LEFT JOIN users u ON m.uid = u.uid";
    "SELECT m.text, u.name FROM messages m, users u WHERE m.uid = u.uid \
     ORDER BY m.text, u.name";
    "SELECT PROVENANCE m.text, u.name FROM messages m, users u WHERE \
     m.uid = u.uid";
  ]

let rows_of e sql =
  let rs = query_ok e sql in
  (rs.Engine.columns, strings_of_rows rs.Engine.rows)

(* In-memory reference results: no budget, no spill pressure. *)
let reference () =
  let e = forum_scaled () in
  let rows = List.map (rows_of e) battery in
  Engine.close e;
  rows

let check_identical ~label e =
  List.iter2
    (fun sql (ref_cols, ref_rows) ->
      let cols, rows = rows_of e sql in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: %s [columns]" label sql)
        ref_cols cols;
      (* ordered compare: spilled results must be byte-identical, not
         just set-equal *)
      Alcotest.(check rows_testable)
        (Printf.sprintf "%s: %s" label sql)
        ref_rows rows)
    battery (reference ())

(* A budget small enough that every battery query crosses it. *)
let tiny_budget = 150

let spill_engine () =
  let e = forum_scaled () in
  Engine.set_tuple_budget e tiny_budget;
  (* spill defaults on; assert rather than assume *)
  Alcotest.(check bool) "spill defaults on" true (Engine.spill_enabled e);
  e

let test_serial_identity () =
  let e = spill_engine () in
  check_identical ~label:"serial spill" e;
  Alcotest.(check bool) "statements actually spilled" true
    (let c = Spill.counters () in
     c.Spill.c_spills > 0);
  Engine.close e

let test_batch_sizes () =
  List.iter
    (fun batch ->
      let e = spill_engine () in
      Engine.set_batch_rows e batch;
      check_identical ~label:(Printf.sprintf "batch_rows %d" batch) e;
      Engine.close e)
    [ 1; 7 ]

let test_row_path_identity () =
  let e = spill_engine () in
  Engine.set_vectorized e false;
  check_identical ~label:"row path" e;
  Engine.close e

let test_parallel_identity () =
  let e = spill_engine () in
  Engine.set_parallel e (Engine.Par_domains domains);
  Engine.set_parallel_threshold e 1;
  Engine.set_morsel_rows e 64;
  check_identical ~label:"parallel (spill fallback)" e;
  Engine.close e

let test_completes_where_kill_would_fire () =
  (* same query, same budget: spill on completes, spill off kills *)
  let sql = "SELECT m.text, u.name FROM messages m, users u WHERE \
             m.uid = u.uid ORDER BY m.text" in
  let e = forum_scaled ~messages:2000 ~users:10 () in
  Engine.set_tuple_budget e 500;
  ignore (query_ok e sql);
  let gauge name =
    Option.value ~default:0. (Metrics.gauge (Engine.metrics e) name)
  in
  Alcotest.(check bool) "spill metric counted" true
    (gauge "executor.spill.spills" > 0. || gauge "executor.spill.fallbacks" > 0.);
  Engine.set_spill e false;
  (match Engine.execute_err e sql with
  | Ok _ -> Alcotest.fail "spill off should restore the hard kill"
  | Error err ->
    Alcotest.(check string) "Resource_exhausted" "resource_exhausted"
      (Err.kind_label err.Err.kind));
  (* switching back on recovers without touching the budget *)
  Engine.set_spill e true;
  ignore (query_ok e sql);
  Engine.close e

(* With spill on, state no path can spill — hash-aggregate groups,
   DISTINCT and set-op tables — still enforces the budget as a hard
   ceiling at the materialization point: the budget is never silently
   ignored. Spillable shapes and low-cardinality aggregates over inputs
   far past the budget keep completing. *)

let expect_exhausted ~label e sql =
  match Engine.execute_err e sql with
  | Ok _ -> Alcotest.failf "%s: %s should hit the budget ceiling" label sql
  | Error err ->
    Alcotest.(check string)
      (Printf.sprintf "%s: %s" label sql)
      "resource_exhausted"
      (Err.kind_label err.Err.kind)

(* 600 messages vs budget 150: mid is unique, so any per-mid table blows
   the ceiling; uid has only 6 distinct values, so per-uid state stays
   tiny no matter how many rows feed it. *)
let non_spillable_ceiling ~label setup =
  let e = spill_engine () in
  setup e;
  expect_exhausted ~label e "SELECT mid, COUNT(*) FROM messages GROUP BY mid";
  expect_exhausted ~label e "SELECT DISTINCT mid FROM messages";
  expect_exhausted ~label e
    "SELECT mid FROM messages UNION SELECT uid FROM messages";
  expect_exhausted ~label e
    "SELECT mid FROM messages EXCEPT SELECT uid FROM users";
  (* few groups over many rows: bounded state, must complete *)
  ignore (query_ok e "SELECT uid, COUNT(*) FROM messages GROUP BY uid");
  ignore (query_ok e "SELECT DISTINCT uid FROM messages");
  (* spillable shapes still degrade instead of dying *)
  ignore (query_ok e "SELECT mid, text FROM messages ORDER BY text DESC, mid");
  Engine.close e

let test_budget_hard_ceiling () =
  non_spillable_ceiling ~label:"batch" (fun _ -> ());
  non_spillable_ceiling ~label:"row" (fun e -> Engine.set_vectorized e false);
  non_spillable_ceiling ~label:"parallel" (fun e ->
      Engine.set_parallel e (Engine.Par_domains domains);
      Engine.set_parallel_threshold e 1;
      Engine.set_morsel_rows e 64)

let test_spill_dir_honoured () =
  let dir = Filename.temp_file "perm_spill_dir" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let e = forum_scaled () in
  Engine.set_spill_dir e dir;
  Alcotest.(check string) "spill_dir getter" dir (Engine.spill_dir e);
  Engine.set_tuple_budget e tiny_budget;
  ignore
    (query_ok e "SELECT mid, text FROM messages ORDER BY text DESC, mid");
  (* temp files are created under the configured dir and cleaned up *)
  Alcotest.(check (list string)) "spill files released"
    []
    (Array.to_list (Sys.readdir dir));
  Engine.close e;
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let () =
  Alcotest.run "spill"
    [
      ( "identity",
        [
          case "serial spill = in-memory, byte for byte" test_serial_identity;
          case "batch sizes 1 and 7" test_batch_sizes;
          case "row-at-a-time path" test_row_path_identity;
          case "parallel falls back and matches" test_parallel_identity;
        ] );
      ( "degradation",
        [
          case "completes where the kill would fire" test_completes_where_kill_would_fire;
          case "non-spillable state keeps the hard ceiling" test_budget_hard_ceiling;
          case "spill dir honoured and cleaned" test_spill_dir_honoured;
        ] );
    ]
