(* Morsel-driven parallel execution.

   The central property is the determinism gate: with parallelism on, every
   query must return *byte-identical* rows in *identical order* to the
   serial closures — the whole suite leans on serial execution as the
   correctness oracle. The domain count comes from the PERM_PARALLEL
   environment variable (CI runs the suite at 1, 2 and 4), defaulting
   to 2. *)

module Engine = Perm_engine.Engine
module Metrics = Perm_obs.Metrics
module Value = Perm_value.Value
open Perm_testkit.Kit

let domains =
  match Sys.getenv_opt "PERM_PARALLEL" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 2)
  | None -> 2

(* Make parallelism reachable for the small test relations: fan out from
   one row up, with tiny morsels so several tasks exist. *)
let go_parallel e =
  Engine.set_parallel e (Engine.Par_domains domains);
  Engine.set_parallel_threshold e 1;
  Engine.set_morsel_rows e 16

(* Rows in order, rendered — order differences must fail the check. *)
let ordered_rows e sql = strings_of_rows (query_ok e sql).Engine.rows

(* The determinism gate: serial vs parallel on the same engine. *)
let check_identical e sql =
  Engine.set_parallel e Engine.Par_off;
  let serial = ordered_rows e sql in
  go_parallel e;
  let parallel = ordered_rows e sql in
  Engine.set_parallel e Engine.Par_off;
  Alcotest.(check rows_testable) (sql ^ " [serial = parallel]") serial parallel

let par_queries e = Metrics.counter (Engine.metrics e) "executor.par.queries"

(* A query that is certainly eligible, for tests that need the parallel
   path to actually engage. *)
let eligible = "SELECT mid, text FROM messages WHERE mid >= 0"

let forum_queries =
  [
    eligible;
    "SELECT * FROM users";
    (* join spine: probe parallel, build serial *)
    "SELECT m.text, u.name FROM messages m, users u WHERE m.uid = u.uid";
    (* aggregation: partitioned pre-aggregation + ordered merge *)
    "SELECT uid, count(*) FROM messages GROUP BY uid";
    "SELECT count(*), min(mid), max(mid) FROM messages";
    (* serial Sort/Limit tails over a parallel core *)
    "SELECT mid, text FROM messages ORDER BY mid DESC LIMIT 7";
    (* fallback shapes must stay correct too *)
    Perm_workload.Forum.q1;
    Perm_workload.Forum.q3;
    (* SQL-PLE provenance: the rewritten q+ plans (wider tuples, extra
       joins) are exactly the workload the tentpole targets *)
    Perm_workload.Forum.q1_provenance;
    "SELECT PROVENANCE m.text FROM messages m WHERE m.mid > 2";
    "SELECT PROVENANCE uid, count(*) FROM messages GROUP BY uid";
  ]

let forum_scaled () =
  let e = engine () in
  Perm_workload.Forum.load_scaled e ~messages:300 ~users:40 ();
  e

let suite_equality =
  [
    case "forum figure-1 data: serial = parallel on every query" (fun () ->
        let e = forum_engine () in
        List.iter (check_identical e) forum_queries);
    case "scaled forum: serial = parallel, parallel path engaged" (fun () ->
        let e = forum_scaled () in
        List.iter (check_identical e) forum_queries;
        Alcotest.(check bool)
          "at least one query ran in parallel" true (par_queries e > 0);
        Engine.close e);
    case "star workload: serial = parallel incl. provenance variants"
      (fun () ->
        let e = engine () in
        Perm_workload.Star.load e ~scale:120 ();
        List.iter
          (fun (_, q, qp) ->
            check_identical e q;
            check_identical e qp)
          Perm_workload.Star.queries;
        Engine.close e);
    case "DML between runs: parallel sees the same store as serial" (fun () ->
        let e = forum_engine () in
        go_parallel e;
        ignore (exec_ok e "INSERT INTO messages VALUES (99, 'new', 1)");
        check_identical e eligible;
        ignore (exec_ok e "DELETE FROM messages WHERE mid = 99");
        check_identical e eligible);
  ]

let suite_lifecycle =
  [
    case "pool is lazy, reused, and torn down by close" (fun () ->
        let e = forum_engine () in
        go_parallel e;
        Alcotest.(check int) "no pool before first parallel query" 0
          (Engine.pool_size e);
        ignore (query_ok e eligible);
        Alcotest.(check int) "pool created at configured size" domains
          (Engine.pool_size e);
        ignore (query_ok e eligible);
        Alcotest.(check int) "pool reused, not regrown" domains
          (Engine.pool_size e);
        Engine.close e;
        Alcotest.(check int) "close releases the pool" 0 (Engine.pool_size e);
        (* the engine stays usable; the next parallel query recreates it *)
        ignore (query_ok e eligible);
        Alcotest.(check int) "pool recreated after close" domains
          (Engine.pool_size e);
        Engine.close e);
    case "resizing tears down the old pool" (fun () ->
        let e = forum_engine () in
        go_parallel e;
        ignore (query_ok e eligible);
        Engine.set_parallel e (Engine.Par_domains (domains + 1));
        Alcotest.(check int) "old pool gone" 0 (Engine.pool_size e);
        ignore (query_ok e eligible);
        Alcotest.(check int) "new size" (domains + 1) (Engine.pool_size e);
        Engine.close e);
    case "\\set parallel off never builds a pool" (fun () ->
        let e = forum_engine () in
        Engine.set_parallel e Engine.Par_off;
        ignore (query_ok e eligible);
        Alcotest.(check int) "no pool" 0 (Engine.pool_size e);
        Alcotest.(check int) "no parallel queries" 0 (par_queries e));
  ]

let suite_fallback =
  [
    case "tiny tables stay serial (threshold)" (fun () ->
        let e = forum_engine () in
        Engine.set_parallel e (Engine.Par_domains domains);
        (* default threshold is far above the Figure 1 row counts *)
        ignore (query_ok e eligible);
        Alcotest.(check int) "no parallel queries" 0 (par_queries e);
        Alcotest.(check bool) "small-input fallback recorded" true
          (Metrics.counter (Engine.metrics e) "executor.par.fallback.small" > 0);
        Engine.close e);
    case "correlated Apply falls back serially" (fun () ->
        let e = forum_engine () in
        go_parallel e;
        (* non-equality correlation defeats decorrelation, so an Apply
           survives into the optimized plan *)
        let sql =
          "SELECT u.name FROM users u WHERE EXISTS (SELECT 1 FROM messages \
           m WHERE m.uid < u.uid)"
        in
        let before = par_queries e in
        check_identical e sql;
        go_parallel e;
        ignore (query_ok e sql);
        Alcotest.(check int) "did not parallelize" before (par_queries e);
        Alcotest.(check bool) "apply fallback recorded" true
          (Metrics.counter (Engine.metrics e) "executor.par.fallback.apply" > 0);
        Engine.close e);
    case "set operations fall back serially" (fun () ->
        let e = forum_engine () in
        go_parallel e;
        let before = par_queries e in
        ignore (query_ok e Perm_workload.Forum.q1);
        Alcotest.(check int) "did not parallelize" before (par_queries e);
        Engine.close e);
    case "instrumentation profiles the parallel path, results identical"
      (fun () ->
        let e = forum_engine () in
        Engine.set_instrumentation e true;
        (* serial oracle with the profiler on... *)
        Engine.set_parallel e Engine.Par_off;
        let serial = ordered_rows e eligible in
        (* ...must match the profiled parallel run byte for byte *)
        go_parallel e;
        let parallel = ordered_rows e eligible in
        Alcotest.(check rows_testable) "serial = parallel under profiling"
          serial parallel;
        Alcotest.(check bool) "parallel path engaged while instrumented" true
          (par_queries e > 0);
        (* per-stage cardinalities land in the retained plan profile *)
        Alcotest.(check bool) "plan profile populated by the parallel run" true
          (List.exists
             (fun pn ->
               pn.Perm_obs.Profile.pn_operator = "Scan(messages)"
               && pn.Perm_obs.Profile.pn_act_rows > 0)
             (Engine.plan_profile e));
        Alcotest.(check bool) "worker profile populated" true
          (Engine.worker_profile e <> []);
        Engine.close e);
  ]

let suite_metrics =
  [
    case "executor.par.* counters, gauges and span after a parallel run"
      (fun () ->
        let e = forum_scaled () in
        go_parallel e;
        ignore (query_ok e eligible);
        let m = Engine.metrics e in
        Alcotest.(check bool) "queries counter" true
          (Metrics.counter m "executor.par.queries" > 0);
        Alcotest.(check bool) "morsel fan-out counted" true
          (Metrics.counter m "executor.par.morsels" >= 2);
        Alcotest.(check (option (float 0.)))
          "domains gauge" (Some (float_of_int domains))
          (Metrics.gauge m "executor.par.domains");
        (match Metrics.gauge m "executor.par.utilization" with
        | Some u -> Alcotest.(check bool) "utilization in (0, 1]" true (u > 0. && u <= 1.)
        | None -> Alcotest.fail "missing executor.par.utilization gauge");
        (* the execute phase carries a "parallel" child span *)
        (match Engine.last_trace e with
        | None -> Alcotest.fail "no trace recorded"
        | Some root ->
          let module Trace = Perm_obs.Trace in
          let execute =
            match Trace.find root "execute" with
            | Some sp -> sp
            | None -> Alcotest.fail "no execute phase span"
          in
          (match Trace.find execute "parallel" with
          | Some psp ->
            let attrs = Trace.attrs psp in
            Alcotest.(check bool) "domains attr" true
              (List.mem_assoc "domains" attrs);
            Alcotest.(check bool) "morsels attr" true
              (List.mem_assoc "morsels" attrs)
          | None -> Alcotest.fail "no parallel child span"));
        Engine.close e);
  ]

let suite_workers =
  [
    case "idle workers report zero morsels when domains outnumber morsels"
      (fun () ->
        let e = forum_engine () in
        Engine.set_instrumentation e true;
        (* 2 forum messages in one huge morsel: with 4 domains at least
           two workers never receive work, yet every domain must appear *)
        Engine.set_parallel e (Engine.Par_domains 4);
        Engine.set_parallel_threshold e 1;
        Engine.set_morsel_rows e 1_000_000;
        ignore (query_ok e eligible);
        let rs =
          query_ok e
            "SELECT domain, morsels, rows FROM perm_stat_workers ORDER BY \
             domain"
        in
        Alcotest.(check int) "one row per domain" 4 (List.length rs.Engine.rows);
        let morsels =
          List.map
            (fun r ->
              match r.(1) with
              | Value.Int n -> n
              | _ -> Alcotest.fail "morsels not an int")
            rs.Engine.rows
        in
        Alcotest.(check int) "single morsel total" 1
          (List.fold_left ( + ) 0 morsels);
        Alcotest.(check bool) "idle workers present with zero morsels" true
          (List.exists (fun n -> n = 0) morsels);
        (* idle workers also report zero rows, not garbage *)
        List.iter
          (fun r ->
            match (r.(1), r.(2)) with
            | Value.Int 0, Value.Int rows ->
              Alcotest.(check int) "idle worker has no rows" 0 rows
            | _ -> ())
          rs.Engine.rows;
        Engine.close e);
    case "a single-domain pool still fills the worker view" (fun () ->
        let e = forum_engine () in
        Engine.set_instrumentation e true;
        Engine.set_parallel e (Engine.Par_domains 1);
        Engine.set_parallel_threshold e 1;
        Engine.set_morsel_rows e 1;
        ignore (query_ok e eligible);
        let rs =
          query_ok e "SELECT domain, morsels, rows FROM perm_stat_workers"
        in
        (match rs.Engine.rows with
        | [ [| Value.Int 0; Value.Int morsels; Value.Int rows |] ] ->
          Alcotest.(check bool) "all morsels on domain 0" true (morsels >= 1);
          Alcotest.(check int) "all rows on domain 0" 2 rows
        | _ -> Alcotest.fail "expected exactly the domain-0 row");
        (* skew is meaningless on one domain: it must stay 1.0 *)
        (match
           (query_ok e "SELECT max_skew FROM perm_stat_workers").Engine.rows
         with
        | [ [| Value.Float skew |] ] ->
          Alcotest.(check (float 1e-9)) "balanced by definition" 1. skew
        | _ -> Alcotest.fail "max_skew row missing");
        Engine.close e);
  ]

(* The determinism gate must hold with telemetry history recording on:
   recording happens on the engine domain after the pool joins, so the
   rings never race the workers, and results stay byte-identical. *)
let suite_history =
  [
    case "serial = parallel with history recording enabled" (fun () ->
        let e = forum_scaled () in
        let h = Engine.history e in
        Perm_obs.History.set_capacity h 128;
        Perm_obs.History.set_cadence h 0.;
        List.iter (check_identical e) forum_queries;
        (* both arms of every check landed in the history rings *)
        Alcotest.(check bool) "executions recorded" true
          (List.length (Perm_obs.History.executions h)
          >= 2 * List.length forum_queries);
        Engine.close e);
  ]

let () =
  Alcotest.run "parallel"
    [
      ("equality", suite_equality);
      ("lifecycle", suite_lifecycle);
      ("fallback", suite_fallback);
      ("metrics", suite_metrics);
      ("workers", suite_workers);
      ("history", suite_history);
    ]
