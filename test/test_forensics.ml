(* The flight recorder and anomaly forensics plane.

   Acceptance bar: every anomaly class the engine knows — typed error,
   timeout, manual cancel, resource exhaustion, injected fault, watchdog
   regression, parallel-to-serial degradation and startup WAL replay —
   must produce a bundle that {!Perm_obs.Bundle_schema} accepts, with the
   class the scenario expects. Plus the recorder ring's own invariants
   (wait-free wrap-around, resize, disable) and the bundle store's
   retention, disk mirroring and SQL surface. *)

module Engine = Perm_engine.Engine
module Recorder = Perm_obs.Recorder
module Bundle_schema = Perm_obs.Bundle_schema
module Json = Perm_obs.Json
module Metrics = Perm_obs.Metrics
module Err = Perm_err
module Fault = Perm_fault
open Perm_testkit.Kit

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rm_rf dir =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let forum_scaled ?(messages = 300) ?(users = 3) () =
  let e = engine () in
  Perm_workload.Forum.load_scaled e ~messages ~users ();
  e

let go_parallel e =
  Engine.set_parallel e (Engine.Par_domains 2);
  Engine.set_parallel_threshold e 1;
  Engine.set_morsel_rows e 64

(* The shared assertion: the newest bundle exists, validates against the
   schema, and carries the class the scenario was built to produce. *)
let check_last_bundle ?(msg = "") e expected_class =
  match Engine.Forensics.last e with
  | None -> Alcotest.failf "%s: no bundle captured" expected_class
  | Some doc -> (
    match Bundle_schema.validate doc with
    | Error why ->
      Alcotest.failf "%s: bundle fails schema: %s%s" expected_class why msg
    | Ok cls ->
      Alcotest.(check string)
        (expected_class ^ " bundle class" ^ msg)
        expected_class cls;
      doc |> ignore);
  List.hd (Engine.Forensics.list e)

(* ------------------------------------------------------------------ *)
(* The recorder ring itself                                            *)
(* ------------------------------------------------------------------ *)

let suite_recorder =
  [
    case "bounded ring: wrap-around keeps the newest tail" (fun () ->
        let r = Recorder.create ~capacity:8 () in
        for i = 1 to 20 do
          Recorder.record r (Recorder.Note { tag = "t"; detail = string_of_int i })
        done;
        Alcotest.(check int) "recorded" 20 (Recorder.recorded r);
        Alcotest.(check int) "dropped" 12 (Recorder.dropped r);
        let tail = Recorder.recent r in
        Alcotest.(check int) "tail is the capacity" 8 (List.length tail);
        (* oldest-first, and exactly the last 8 *)
        let details =
          List.map
            (fun ev ->
              match ev.Recorder.ev_payload with
              | Recorder.Note { detail; _ } -> int_of_string detail
              | _ -> -1)
            tail
        in
        Alcotest.(check (list int)) "newest tail in order"
          [ 13; 14; 15; 16; 17; 18; 19; 20 ]
          details);
    case "set_capacity preserves the newest events" (fun () ->
        let r = Recorder.create ~capacity:8 () in
        for i = 1 to 6 do
          Recorder.record r (Recorder.Note { tag = "t"; detail = string_of_int i })
        done;
        Recorder.set_capacity r 4;
        let details =
          List.map
            (fun ev ->
              match ev.Recorder.ev_payload with
              | Recorder.Note { detail; _ } -> int_of_string detail
              | _ -> -1)
            (Recorder.recent r)
        in
        Alcotest.(check (list int)) "kept newest 4" [ 3; 4; 5; 6 ] details;
        (* the seq counter keeps running; new events continue the tail *)
        Recorder.record r (Recorder.Note { tag = "t"; detail = "7" });
        Alcotest.(check int) "still bounded" 4
          (List.length (Recorder.recent r)));
    case "capacity 0 disables recording entirely" (fun () ->
        let r = Recorder.create ~capacity:0 () in
        Alcotest.(check bool) "disabled" false (Recorder.enabled r);
        Recorder.record r (Recorder.Note { tag = "t"; detail = "x" });
        Alcotest.(check int) "nothing recorded" 0 (Recorder.recorded r);
        Alcotest.(check int) "nothing retained" 0
          (List.length (Recorder.recent r)));
    case "concurrent recording from multiple domains never crashes"
      (fun () ->
        let r = Recorder.create ~capacity:64 () in
        let writers =
          List.init 4 (fun d ->
              Domain.spawn (fun () ->
                  for i = 1 to 500 do
                    Recorder.record r
                      (Recorder.Spill
                         { kind = "run"; detail = Printf.sprintf "%d.%d" d i })
                  done))
        in
        (* read while they write: snapshots must always be well-formed *)
        for _ = 1 to 50 do
          let evs = Recorder.recent r in
          Alcotest.(check bool) "bounded snapshot" true
            (List.length evs <= 64);
          let seqs = List.map (fun ev -> ev.Recorder.ev_seq) evs in
          Alcotest.(check (list int)) "sorted snapshot"
            (List.sort compare seqs) seqs
        done;
        List.iter Domain.join writers;
        Alcotest.(check int) "all events counted" 2000 (Recorder.recorded r));
    case "event_to_json carries kind and payload fields" (fun () ->
        let r = Recorder.create ~capacity:4 () in
        Recorder.record r
          (Recorder.Stmt_finish
             { fingerprint = "fp"; ms = 1.5; rows = 3; error = Some "timeout" });
        match Recorder.recent r with
        | [ ev ] ->
          let j = Recorder.event_to_json ev in
          Alcotest.(check (option string)) "kind"
            (Some "stmt_finish")
            (match Json.member "kind" j with
            | Some (Json.String s) -> Some s
            | _ -> None);
          Alcotest.(check (option string)) "error field"
            (Some "timeout")
            (match Json.member "error" j with
            | Some (Json.String s) -> Some s
            | _ -> None)
        | l -> Alcotest.failf "expected 1 event, got %d" (List.length l));
  ]

(* ------------------------------------------------------------------ *)
(* One bundle per anomaly class                                        *)
(* ------------------------------------------------------------------ *)

let suite_classes =
  [
    case "error: analyze failure captures an error bundle" (fun () ->
        let e = forum_engine () in
        ignore (query_err e "SELECT broken FROM nowhere");
        let s = check_last_bundle e "error" in
        Alcotest.(check bool) "detail carries the message" true
          (contains ~needle:"nowhere" s.Engine.Forensics.fs_detail);
        Alcotest.(check string) "sql preserved" "SELECT broken FROM nowhere"
          s.Engine.Forensics.fs_sql;
        Engine.close e);
    case "timeout: governor kill captures a timeout bundle" (fun () ->
        let e = forum_scaled () in
        Engine.set_statement_timeout e 0.00001;
        ignore
          (query_err e
             "SELECT m1.mid + m2.mid FROM messages m1, messages m2");
        Engine.set_statement_timeout e 0.;
        ignore (check_last_bundle e "timeout");
        Engine.close e);
    case "cancelled: manual cancel captures a cancelled bundle" (fun () ->
        let e = forum_scaled ~messages:400 () in
        Engine.set_statement_timeout e 60_000.;
        let canceller =
          Domain.spawn (fun () ->
              Unix.sleepf 0.05;
              Engine.cancel e "killed by forensics test")
        in
        ignore
          (query_err e
             "SELECT m1.mid + m2.mid + m3.mid FROM messages m1, messages \
              m2, messages m3");
        Domain.join canceller;
        Engine.set_statement_timeout e 0.;
        ignore (check_last_bundle e "cancelled");
        Engine.close e);
    case "resource_exhausted: row_limit kill captures a bundle" (fun () ->
        let e = forum_scaled () in
        Engine.set_row_limit e 10;
        ignore (query_err e "SELECT * FROM messages");
        Engine.set_row_limit e 0;
        ignore (check_last_bundle e "resource_exhausted");
        Engine.close e);
    case "fault: injected fault captures a fault bundle" (fun () ->
        let e = forum_engine () in
        Fault.set "heap.scan" 1.0;
        ignore (query_err e "SELECT * FROM messages");
        Fault.reset ();
        let s = check_last_bundle e "fault" in
        Alcotest.(check bool) "detail names the point" true
          (contains ~needle:"heap.scan" s.Engine.Forensics.fs_detail);
        Engine.close e);
    case "regression: watchdog verdict captures a regression bundle"
      (fun () ->
        let e = forum_engine () in
        let sql = "SELECT text FROM messages WHERE mid = 1" in
        for _ = 1 to 3 do
          ignore (query_ok e sql)
        done;
        (* an index flips the structural plan hash — the watchdog's
           plan-change detector fires regardless of timing noise *)
        ignore (exec_ok e "CREATE INDEX idx_fmid ON messages(mid)");
        ignore (query_ok e sql);
        let s = check_last_bundle e "regression" in
        Alcotest.(check bool) "detail attributes the cause" true
          (contains ~needle:"plan" s.Engine.Forensics.fs_detail);
        Engine.close e);
    case "degraded: poisoned parallel run captures a degraded bundle"
      (fun () ->
        let e = forum_scaled () in
        go_parallel e;
        Fault.set "pool.dispatch" 1.0;
        (* the statement still succeeds — on the serial retry — so only
           the forensics plane knows anything went wrong *)
        ignore (query_ok e "SELECT mid, text FROM messages WHERE mid >= 0");
        Fault.reset ();
        let s = check_last_bundle e "degraded" in
        Alcotest.(check bool) "detail names the degradation" true
          (contains ~needle:"serial" s.Engine.Forensics.fs_detail);
        Engine.close e);
    case "wal_replay: startup recovery captures a wal_replay bundle"
      (fun () ->
        let dir = temp_dir "perm_forensics_wal" in
        Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
        let e1 = engine () in
        ignore (Engine.enable_wal e1 dir);
        ignore (exec_ok e1 "CREATE TABLE t (a INT)");
        ignore (exec_ok e1 "INSERT INTO t VALUES (1), (2)");
        Alcotest.(check bool) "no replay bundle on a fresh log" true
          (Engine.Forensics.last e1 = None);
        Engine.close e1;
        let e2 = engine () in
        (match Engine.enable_wal e2 dir with
        | Ok rp ->
          Alcotest.(check bool) "something was replayed" true
            (rp.Perm_wal.rp_records > 0 || rp.Perm_wal.rp_snapshot)
        | Error err -> Alcotest.failf "reopen failed: %s" (Err.to_string err));
        let s = check_last_bundle e2 "wal_replay" in
        Alcotest.(check bool) "detail summarizes the replay" true
          (contains ~needle:"replay" s.Engine.Forensics.fs_detail);
        check_count e2 "SELECT * FROM t" 2;
        Engine.close e2);
  ]

(* ------------------------------------------------------------------ *)
(* Bundle content and store behavior                                   *)
(* ------------------------------------------------------------------ *)

let suite_store =
  [
    case "bundle carries plan, metrics delta, events and settings"
      (fun () ->
        let e = forum_engine () in
        Engine.set_instrumentation e true;
        (* a query that runs, then an error on the same session: the error
           bundle's event tail must include the earlier statement too *)
        ignore (query_ok e "SELECT text FROM messages WHERE mid = 1");
        ignore (query_err e "SELECT broken FROM nowhere");
        let doc =
          match Engine.Forensics.last e with
          | Some d -> d
          | None -> Alcotest.fail "no bundle"
        in
        (match Json.member "metrics_delta" doc with
        | Some (Json.Obj fields) ->
          (* the failing statement itself is in the delta *)
          (match List.assoc_opt "engine.errors" fields with
          | Some (Json.Float d) ->
            Alcotest.(check (float 0.)) "error delta" 1. d
          | _ -> Alcotest.fail "engine.errors missing from delta")
        | _ -> Alcotest.fail "metrics_delta missing");
        (match Json.member "events" doc with
        | Some (Json.List evs) ->
          Alcotest.(check bool) "event tail present" true
            (List.length evs >= 2);
          let kinds =
            List.filter_map
              (fun ev ->
                match Json.member "kind" ev with
                | Some (Json.String k) -> Some k
                | _ -> None)
              evs
          in
          Alcotest.(check bool) "stmt_start recorded" true
            (List.mem "stmt_start" kinds);
          Alcotest.(check bool) "stmt_finish recorded" true
            (List.mem "stmt_finish" kinds)
        | _ -> Alcotest.fail "events missing");
        (match Json.member "settings" doc with
        | Some (Json.Obj fields) ->
          Alcotest.(check bool) "settings carry the governor" true
            (List.mem_assoc "timeout_ms" fields
            && List.mem_assoc "tuple_budget" fields)
        | _ -> Alcotest.fail "settings missing");
        (match Json.member "wal" doc with
        | Some Json.Null -> ()  (* no WAL on this session *)
        | Some (Json.Obj _) -> ()
        | _ -> Alcotest.fail "wal section missing");
        Engine.close e);
    case "plan section has est vs act per node under instrumentation"
      (fun () ->
        let e = forum_engine () in
        Engine.set_instrumentation e true;
        let sql = "SELECT text FROM messages WHERE mid = 1" in
        (* warm the profile for this fingerprint, then fail the same
           statement via a fault so plan rows exist for the bundle *)
        ignore (query_ok e sql);
        Fault.set "heap.scan" 1.0;
        ignore (query_err e sql);
        Fault.reset ();
        let doc =
          match Engine.Forensics.last e with
          | Some d -> d
          | None -> Alcotest.fail "no bundle"
        in
        (match Json.member "plan" doc with
        | Some plan -> (
          match Json.member "nodes" plan with
          | Some (Json.List (n :: _)) ->
            Alcotest.(check bool) "node has operator" true
              (Json.member "operator" n <> None);
            Alcotest.(check bool) "node has est_rows" true
              (Json.member "est_rows" n <> None);
            Alcotest.(check bool) "node has act_rows" true
              (Json.member "act_rows" n <> None)
          | _ -> Alcotest.fail "plan nodes empty")
        | None -> Alcotest.fail "plan missing");
        Engine.close e);
    case "store is bounded: retention trims oldest first" (fun () ->
        let e = forum_engine () in
        Engine.Forensics.set_capacity e 3;
        for i = 1 to 6 do
          ignore (query_err e (Printf.sprintf "SELECT c%d FROM nowhere" i))
        done;
        let bundles = Engine.Forensics.list e in
        Alcotest.(check int) "capacity respected" 3 (List.length bundles);
        (* newest first, ids keep growing *)
        let ids = List.map (fun s -> s.Engine.Forensics.fs_id) bundles in
        Alcotest.(check (list int)) "newest three by id" [ 6; 5; 4 ] ids;
        (* an evicted id is gone *)
        Alcotest.(check bool) "evicted id 404s" true
          (Engine.Forensics.get e 1 = None);
        (* a retained one still resolves *)
        Alcotest.(check bool) "retained id resolves" true
          (Engine.Forensics.get e 5 <> None);
        Engine.close e);
    case "recorder off also disables bundle capture" (fun () ->
        let e = forum_engine () in
        Recorder.set_capacity (Engine.recorder e) 0;
        ignore (query_err e "SELECT broken FROM nowhere");
        Alcotest.(check bool) "no bundle captured" true
          (Engine.Forensics.last e = None);
        Recorder.set_capacity (Engine.recorder e) 512;
        ignore (query_err e "SELECT broken FROM nowhere");
        Alcotest.(check bool) "capture resumes" true
          (Engine.Forensics.last e <> None);
        Engine.close e);
    case "disk mirror writes schema-valid files and prunes" (fun () ->
        let dir = temp_dir "perm_forensics_mirror" in
        Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
        let e = forum_engine () in
        Engine.Forensics.set_capacity e 2;
        Engine.Forensics.set_dir e (Some dir);
        for i = 1 to 4 do
          ignore (query_err e (Printf.sprintf "SELECT d%d FROM nowhere" i))
        done;
        let files = List.sort compare (Array.to_list (Sys.readdir dir)) in
        Alcotest.(check (list string)) "pruned to capacity"
          [ "bundle-000003.json"; "bundle-000004.json" ]
          files;
        List.iter
          (fun f ->
            let body =
              In_channel.with_open_text (Filename.concat dir f)
                In_channel.input_all
            in
            match Bundle_schema.validate_string body with
            | Ok _ -> ()
            | Error why -> Alcotest.failf "%s invalid on disk: %s" f why)
          files;
        Engine.close e);
    case "perm_stat_anomalies is queryable like any relation" (fun () ->
        let e = forum_engine () in
        ignore (query_err e "SELECT broken FROM nowhere");
        Engine.set_row_limit e 1;
        ignore (query_err e "SELECT * FROM messages");
        Engine.set_row_limit e 0;
        check_rows e
          "SELECT class FROM perm_stat_anomalies ORDER BY id"
          [ [ "error" ]; [ "resource_exhausted" ] ];
        (* joins and filters work — it is a real relation *)
        check_count e
          "SELECT id FROM perm_stat_anomalies WHERE class = 'error'" 1;
        Engine.close e);
    case "forensics counters account for captures" (fun () ->
        let e = forum_engine () in
        ignore (query_err e "SELECT broken FROM nowhere");
        ignore (query_err e "SELECT broken FROM nowhere");
        let m = Engine.metrics e in
        Alcotest.(check int) "bundle counter" 2
          (Metrics.counter m "forensics.bundles");
        Alcotest.(check int) "per-class counter" 2
          (Metrics.counter m "forensics.class.error");
        Engine.close e);
  ]

let () =
  Alcotest.run "forensics"
    [
      ("recorder", suite_recorder);
      ("classes", suite_classes);
      ("store", suite_store);
    ]
