(* Chaos suite: deterministic fault injection against the whole engine.

   Invariant under ANY injection schedule: [Engine.execute_err] returns
   [Error _] — it never raises, never wedges a worker domain, never
   leaves the pool unusable — and data that was reported committed is
   still there (and uncommitted data is not) once the faults stop.

   The schedule is deterministic in the seed: CI runs this binary across
   several PERM_FAULT seeds and PERM_PARALLEL domain counts. *)

module Engine = Perm_engine.Engine
module Metrics = Perm_obs.Metrics
module Err = Perm_err
module Fault = Perm_fault
open Perm_testkit.Kit

let seed =
  match Sys.getenv_opt "PERM_FAULT" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> 42)
  | None -> 42

let domains =
  match Sys.getenv_opt "PERM_PARALLEL" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 2)
  | None -> 2

let go_parallel e =
  Engine.set_parallel e (Engine.Par_domains domains);
  Engine.set_parallel_threshold e 1;
  Engine.set_morsel_rows e 16

let chaos_engine () =
  let e = engine () in
  Perm_workload.Forum.load_scaled e ~messages:200 ~users:10 ();
  go_parallel e;
  Fault.reset ();
  Fault.set_seed seed;
  e

(* Every registered injection point, spanning storage, executor, pool and
   engine layers. Keep in sync with the [Perm_fault.point] call sites. *)
let all_points =
  [
    "heap.scan";
    "heap.insert";
    "join.build";
    "agg.merge";
    "sort.materialize";
    "pool.dispatch";
    "engine.commit";
  ]

(* Statements covering every injection point: scans, a hash join build,
   partitioned aggregation, a sort, parallel fan-out, DML and a
   BEGIN/INSERT/COMMIT transaction. *)
let battery_queries =
  [
    "SELECT mid, text FROM messages WHERE mid >= 0";
    "SELECT m.text, u.name FROM messages m, users u WHERE m.uid = u.uid";
    "SELECT uid, count(*) FROM messages GROUP BY uid";
    "SELECT mid, text FROM messages ORDER BY mid DESC LIMIT 7";
    "SELECT PROVENANCE m.text FROM messages m WHERE m.mid > 2";
  ]

(* Run one statement; any exception is an instant failure, and any error
   must carry the [Faulted] kind (valid SQL + managed transaction state:
   the only legitimate failure cause is an injected fault). *)
let run_stmt e sql =
  match Engine.execute_err e sql with
  | Ok _ -> `Ok
  | Error err ->
    Alcotest.(check bool)
      (Printf.sprintf "%s [error kind %s must be faulted]" sql
         (Err.kind_label err.Err.kind))
      true
      (err.Err.kind = Err.Faulted);
    `Error
  | exception exn ->
    Alcotest.failf "%s raised %s under injection" sql (Printexc.to_string exn)

let run_battery e =
  let errors = ref 0 in
  let run sql = if run_stmt e sql = `Error then incr errors in
  List.iter run battery_queries;
  (* transactional leg: BEGIN/ROLLBACK never trip a point (snapshots are
     plain copies), INSERT and COMMIT may *)
  ignore (Engine.execute_err e "BEGIN");
  run "INSERT INTO messages VALUES (9999, 'chaos', 1)";
  (match Engine.execute_err e "COMMIT" with
  | Ok _ -> ignore (Engine.execute_err e "DELETE FROM messages WHERE mid = 9999")
  | Error _ ->
    incr errors;
    ignore (Engine.execute_err e "ROLLBACK")
  | exception exn ->
    Alcotest.failf "COMMIT raised %s under injection" (Printexc.to_string exn));
  !errors

(* After disarming, the engine must be fully functional: queries succeed,
   the pool answers parallel work, no rows leaked from the battery. *)
let check_recovered e =
  Fault.reset ();
  (* a faulted DELETE may have left the battery's scratch row behind —
     that is an Error honestly reported, not corruption; clean it up now
     to prove DML works again *)
  ignore (exec_ok e "DELETE FROM messages WHERE mid = 9999");
  check_count e "SELECT * FROM messages WHERE mid = 9999" 0;
  ignore (query_ok e "SELECT mid, text FROM messages WHERE mid >= 0");
  ignore (query_ok e "SELECT uid, count(*) FROM messages GROUP BY uid");
  if Engine.pool_size e > 0 then
    Alcotest.(check int) "no leaked or dead worker domains" domains
      (Engine.pool_size e)

let suite_points =
  List.map
    (fun point ->
      case (Printf.sprintf "certain injection at %s: Error, never a crash" point)
        (fun () ->
          let e = chaos_engine () in
          Fault.set point 1.0;
          let errors = run_battery e + run_battery e in
          Alcotest.(check bool)
            (Printf.sprintf "point %s was exercised" point)
            true
            (Fault.injections () > 0);
          (* pool.dispatch degrades to a serial retry, so its battery can
             finish with zero user-visible errors — every other point must
             surface at least one Error *)
          if point <> "pool.dispatch" then
            Alcotest.(check bool) "at least one statement failed" true
              (errors >= 1);
          check_recovered e;
          Engine.close e))
    all_points

let suite_sweep =
  [
    case "all points armed at 0.3: three batteries, engine survives"
      (fun () ->
        let e = chaos_engine () in
        List.iter (fun p -> Fault.set p 0.3) all_points;
        for _ = 1 to 3 do
          ignore (run_battery e)
        done;
        Alcotest.(check bool) "faults actually fired" true
          (Fault.injections () > 0);
        check_recovered e;
        Engine.close e);
    case "degraded parallel retries are visible in metrics" (fun () ->
        let e = chaos_engine () in
        Fault.set "pool.dispatch" 1.0;
        ignore (run_battery e);
        Alcotest.(check bool) "executor.par.degraded counted" true
          (Metrics.counter (Engine.metrics e) "executor.par.degraded" >= 1);
        Alcotest.(check bool) "fault.injected.pool.dispatch counted" true
          (Metrics.counter (Engine.metrics e) "fault.injected.pool.dispatch"
           >= 1);
        check_recovered e;
        Engine.close e);
  ]

let suite_integrity =
  [
    case "commit/insert faults at 0.5: committed set is exactly preserved"
      (fun () ->
        let e = chaos_engine () in
        Fault.set "engine.commit" 0.5;
        Fault.set "heap.insert" 0.5;
        let committed = ref [] in
        for i = 0 to 39 do
          let mid = 10_000 + i in
          ignore (Engine.execute_err e "BEGIN");
          let sql =
            Printf.sprintf "INSERT INTO messages VALUES (%d, 'tx', 1)" mid
          in
          (match Engine.execute_err e sql with
          | Error _ -> ignore (Engine.execute_err e "ROLLBACK")
          | Ok _ -> (
            match Engine.execute_err e "COMMIT" with
            | Ok _ -> committed := mid :: !committed
            | Error _ ->
              (* faulted commit left the transaction open; discard it *)
              ignore (Engine.execute_err e "ROLLBACK")))
        done;
        Fault.reset ();
        Alcotest.(check bool) "both outcomes occurred" true
          (List.length !committed > 0 && List.length !committed < 40);
        let expected =
          List.map (fun mid -> [ string_of_int mid ]) (List.sort compare !committed)
        in
        check_rows ~ordered:true e
          "SELECT mid FROM messages WHERE mid >= 10000 ORDER BY mid" expected;
        Engine.close e);
    case "post-fault data identical to a no-fault run" (fun () ->
        (* the same battery on a faulted engine (after recovery) and on a
           never-faulted twin must leave identical table contents *)
        (* compare below the battery's scratch-row id: a committed-then-
           unfaulted-DELETE cycle may leave mid 9999 behind legitimately *)
        let stable e =
          strings_of_rows
            (query_ok e "SELECT * FROM messages WHERE mid < 9999 ORDER BY mid")
              .Engine.rows
        in
        let faulted = chaos_engine () in
        Fault.set_all 0.4;
        ignore (run_battery faulted);
        ignore (run_battery faulted);
        Fault.reset ();
        let clean = chaos_engine () in
        Fault.reset ();
        Alcotest.(check rows_testable) "identical contents" (stable clean)
          (stable faulted);
        Engine.close faulted;
        Engine.close clean);
  ]

let suite_determinism =
  [
    case "same seed, serial execution: identical fault schedule" (fun () ->
        let outcomes () =
          let e = engine () in
          Perm_workload.Forum.load_scaled e ~messages:100 ~users:5 ();
          Engine.set_parallel e Engine.Par_off;
          Fault.reset ();
          Fault.set_seed seed;
          List.iter (fun p -> Fault.set p 0.3) all_points;
          let kinds =
            List.map
              (fun sql ->
                match Engine.execute_err e sql with
                | Ok _ -> "ok"
                | Error err -> Err.kind_label err.Err.kind)
              (battery_queries @ battery_queries)
          in
          let injected = Fault.injections () in
          Fault.reset ();
          (kinds, injected)
        in
        let a = outcomes () and b = outcomes () in
        Alcotest.(check (pair (list string) int))
          "replayed schedule matches" a b);
  ]

(* Batch-boundary guarantees of the vectorized path: the cancel token is
   checked at operator start and charged once per emitted batch, so a
   governor kill lands within a bounded number of batches; fault points
   trip per operator invocation, so the injection schedule is a function
   of the seed alone — not of the batch size, and not of whether the
   statement ran on the row or the batch path. *)
let suite_batch =
  let expect_timeout e ~bound_ms sql =
    Engine.set_statement_timeout e bound_ms;
    let t0 = Unix.gettimeofday () in
    let err =
      match Engine.execute_err e sql with
      | Ok _ -> Alcotest.failf "%s finished under a %.0f ms timeout" sql bound_ms
      | Error err -> err
    in
    let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    Engine.set_statement_timeout e 0.;
    Alcotest.(check bool)
      (Printf.sprintf "killed with Timeout [got %s]" (Err.kind_label err.Err.kind))
      true
      (err.Err.kind = Err.Timeout);
    Alcotest.(check bool)
      (Printf.sprintf "killed within 2x bound (%.0f ms <= %.0f ms)" elapsed_ms
         (2. *. bound_ms))
      true
      (elapsed_ms <= 2. *. bound_ms)
  in
  [
    case "fault schedule identical across batch sizes and vs the row path"
      (fun () ->
        let outcomes ~vectorized ~batch_rows =
          let e = engine () in
          Perm_workload.Forum.load_scaled e ~messages:100 ~users:5 ();
          Engine.set_parallel e Engine.Par_off;
          Engine.set_vectorized e vectorized;
          Engine.set_batch_rows e batch_rows;
          Fault.reset ();
          Fault.set_seed seed;
          List.iter (fun p -> Fault.set p 0.3) all_points;
          let kinds =
            List.map
              (fun sql ->
                match Engine.execute_err e sql with
                | Ok _ -> "ok"
                | Error err -> Err.kind_label err.Err.kind)
              (battery_queries @ battery_queries)
          in
          let injected = Fault.injections () in
          Fault.reset ();
          (kinds, injected)
        in
        let row_path = outcomes ~vectorized:false ~batch_rows:1024 in
        List.iter
          (fun n ->
            Alcotest.(check (pair (list string) int))
              (Printf.sprintf "batch_rows=%d replays the row-path schedule" n)
              row_path
              (outcomes ~vectorized:true ~batch_rows:n))
          [ 1; 7; 1024 ]);
    case "timeout on the serial batch path: killed within 2x at batch bounds"
      (fun () ->
        let e = engine () in
        Perm_workload.Forum.load_scaled e ~messages:400 ~users:3 ();
        Engine.set_parallel e Engine.Par_off;
        Engine.set_vectorized e true;
        Engine.set_batch_rows e 64;
        expect_timeout e ~bound_ms:250.
          "SELECT m1.mid + m2.mid + m3.mid FROM messages m1, messages m2, \
           messages m3";
        (* session still healthy on the same path *)
        ignore (query_ok e "SELECT count(*) FROM messages"));
    case "timeout on the parallel batch path: pool drains and survives"
      (fun () ->
        let e = engine () in
        Perm_workload.Forum.load_scaled e ~messages:3000 ~users:3 ();
        go_parallel e;
        Engine.set_vectorized e true;
        Engine.set_batch_rows e 64;
        expect_timeout e ~bound_ms:400.
          "SELECT PROVENANCE m1.text, m2.text FROM messages m1, messages m2 \
           WHERE m1.uid = m2.uid";
        ignore (query_ok e "SELECT mid, text FROM messages WHERE mid >= 0");
        Alcotest.(check int) "pool reused after the kill" domains
          (Engine.pool_size e);
        Engine.close e);
  ]

let () =
  Alcotest.run "chaos"
    [
      ("points", suite_points);
      ("sweep", suite_sweep);
      ("integrity", suite_integrity);
      ("determinism", suite_determinism);
      ("batch", suite_batch);
    ]
