(* Benchmark harness: regenerates every experiment of DESIGN.md §5.

   The demo paper has no numeric tables; Figures 1/2 are data artifacts
   (checked here as the E2 sanity gate, reproduced exactly by the test
   suite), and B1-B6 regenerate the performance behaviour the demo
   exhibits: provenance rewrite overhead per query class, rewrite-strategy
   ablation, lazy vs. eager computation, contribution-semantics cost, scale
   sweep, and the optimizer ablation. One Bechamel [Test.make] per measured
   configuration; each experiment prints one plain-text table. *)

open Bechamel
module Engine = Perm_engine.Engine
module Forum = Perm_workload.Forum
module Planner = Perm_planner.Planner

(* ------------------------------------------------------------------ *)
(* Measurement helpers                                                 *)
(* ------------------------------------------------------------------ *)

let quota = ref 0.4

(* Estimated wall-clock nanoseconds for one call of [f], via Bechamel's OLS
   over the monotonic clock. *)
let measure_ns name f =
  let test = Test.make ~name (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second !quota) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  match Hashtbl.fold (fun _ v acc -> v :: acc) analyzed [] with
  | [ o ] -> (
    match Analyze.OLS.estimates o with
    | Some [ t ] -> t
    | Some _ | None -> Float.nan)
  | _ -> Float.nan

let ms ns = ns /. 1e6

let run_query engine sql =
  match Engine.query engine sql with
  | Ok rs -> ignore rs.Engine.rows
  | Error msg -> failwith (Printf.sprintf "bench query failed: %s (%s)" msg sql)

let time_query engine sql =
  (* warm once outside the measurement so cold caches and the major-heap
     spike from data loading don't pollute the OLS estimate *)
  run_query engine sql;
  measure_ns sql (fun () -> run_query engine sql)

(* plain-text table output *)
let print_table title header rows =
  Printf.printf "\n## %s\n\n" title;
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    print_string "  ";
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        print_string c;
        print_string (String.make (w - String.length c + 2) ' '))
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  flush stdout

let fms t = Printf.sprintf "%.3f" (ms t)
let ffac t = Printf.sprintf "%.2fx" t

(* engines with scaled forum data, built once per size *)
let forum_cache : (int, Engine.t) Hashtbl.t = Hashtbl.create 8

let forum_engine size =
  match Hashtbl.find_opt forum_cache size with
  | Some e -> e
  | None ->
    let e = Engine.create () in
    Forum.load_scaled e ~messages:size ~users:(max 10 (size / 20)) ();
    Gc.compact ();
    Hashtbl.replace forum_cache size e;
    e

(* ------------------------------------------------------------------ *)
(* E2 sanity gate: Figure 2 must hold before we trust any numbers      *)
(* ------------------------------------------------------------------ *)

let e2_sanity () =
  let e = Engine.create () in
  Forum.load e;
  match Engine.query e Forum.q1_provenance with
  | Ok rs when List.length rs.Engine.rows = 4 ->
    print_endline
      "[E2] Figure 2 sanity: provenance of q1 has the paper's 4 rows - OK"
  | Ok rs ->
    failwith
      (Printf.sprintf "[E2] FAILED: expected 4 rows, got %d"
         (List.length rs.Engine.rows))
  | Error msg -> failwith ("[E2] FAILED: " ^ msg)

(* ------------------------------------------------------------------ *)
(* B1: rewrite overhead by query class                                 *)
(* ------------------------------------------------------------------ *)

let query_classes =
  [
    ( "SPJ",
      "SELECT m.text, a.uid FROM messages m JOIN approved a ON m.mid = a.mid \
       WHERE m.mid % 7 = 0",
      "SELECT PROVENANCE m.text, a.uid FROM messages m JOIN approved a ON \
       m.mid = a.mid WHERE m.mid % 7 = 0" );
    ( "AGG (q3)",
      "SELECT count(*), text FROM v1 JOIN approved a ON v1.mid = a.mid GROUP \
       BY v1.mid, text",
      "SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mid = \
       a.mid GROUP BY v1.mid, text" );
    ( "UNION (q1)",
      "SELECT mid, text FROM messages UNION SELECT mid, text FROM imports",
      "SELECT PROVENANCE mid, text FROM messages UNION SELECT mid, text FROM \
       imports" );
    ( "NESTED (IN)",
      "SELECT text FROM messages WHERE mid IN (SELECT mid FROM approved)",
      "SELECT PROVENANCE text FROM messages WHERE mid IN (SELECT mid FROM \
       approved)" );
  ]

let b1 sizes =
  let rows =
    List.concat_map
      (fun size ->
        let e = forum_engine size in
        List.map
          (fun (cls, q, qp) ->
            let t0 = time_query e q in
            let t1 = time_query e qp in
            [ cls; string_of_int size; fms t0; fms t1; ffac (t1 /. t0) ])
          query_classes)
      sizes
  in
  print_table "B1: provenance rewrite overhead by query class"
    [ "class"; "messages"; "original ms"; "provenance ms"; "overhead" ]
    rows

(* ------------------------------------------------------------------ *)
(* B2: aggregation rewrite strategy ablation                            *)
(* ------------------------------------------------------------------ *)

let b2 ~rows:n ~group_counts =
  let rows =
    List.map
      (fun groups ->
        let e = Engine.create () in
        (match Engine.execute e "CREATE TABLE g (k int, v int)" with
        | Ok _ -> ()
        | Error msg -> failwith msg);
        let buf = Buffer.create 4096 in
        let flush_batch () =
          if Buffer.length buf > 0 then begin
            (match
               Engine.execute e
                 (Printf.sprintf "INSERT INTO g VALUES %s" (Buffer.contents buf))
             with
            | Ok _ -> ()
            | Error msg -> failwith msg);
            Buffer.clear buf
          end
        in
        for i = 0 to n - 1 do
          if Buffer.length buf > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Printf.sprintf "(%d, %d)" (i mod groups) i);
          if i mod 500 = 499 then flush_batch ()
        done;
        flush_batch ();
        Gc.compact ();
        let sql = "SELECT PROVENANCE count(*), k FROM g GROUP BY k" in
        let run strategy config =
          Engine.set_agg_strategy e strategy;
          Engine.set_optimizer_config e config;
          let t = time_query e sql in
          Engine.set_optimizer_config e Planner.default_config;
          t
        in
        let no_decorrelate =
          { Planner.default_config with Planner.decorrelate_applies = false }
        in
        let tj = run Engine.Use_join Planner.default_config in
        (* raw lateral: the planner must not de-correlate it back to a join *)
        let tl = run Engine.Use_lateral no_decorrelate in
        Engine.set_agg_strategy e Engine.Use_cost_based;
        run_query e sql;
        let chosen =
          match Engine.last_report e with
          | Some r -> (
            match r.Perm_provenance.Rewriter.agg_choices with
            | Perm_provenance.Rewriter.Agg_join :: _ -> "join"
            | Perm_provenance.Rewriter.Agg_lateral :: _ -> "lateral"
            | [] -> "?")
          | None -> "?"
        in
        [ string_of_int groups; fms tj; fms tl; ffac (tl /. tj); chosen ])
      group_counts
  in
  print_table
    (Printf.sprintf
       "B2: aggregation rewrite strategies (%d rows; lateral re-evaluates per group)"
       n)
    [ "groups"; "join ms"; "lateral ms"; "lateral/join"; "cost-based picks" ]
    rows

(* ------------------------------------------------------------------ *)
(* B3: lazy vs eager provenance                                        *)
(* ------------------------------------------------------------------ *)

let b3 ~size =
  let e = forum_engine size in
  let q =
    "SELECT count(*) AS cnt, text FROM v1 JOIN approved a ON v1.mid = a.mid \
     GROUP BY v1.mid, text"
  in
  let qp =
    "SELECT PROVENANCE count(*) AS cnt, text FROM v1 JOIN approved a ON \
     v1.mid = a.mid GROUP BY v1.mid, text"
  in
  let t_store =
    measure_ns "store" (fun () ->
        (match Engine.execute e "DROP TABLE b3_store" with
        | Ok _ | Error _ -> ());
        match
          Engine.execute e
            (Printf.sprintf "STORE PROVENANCE %s INTO b3_store" q)
        with
        | Ok _ -> ()
        | Error msg -> failwith msg)
  in
  let t_lazy = time_query e qp in
  let t_eager = time_query e "SELECT * FROM b3_store" in
  let break_even = t_store /. Float.max 1.0 (t_lazy -. t_eager) in
  print_table
    (Printf.sprintf "B3: lazy vs eager provenance (forum %d messages)" size)
    [ "mode"; "cost ms"; "notes" ]
    [
      [ "lazy (per query)"; fms t_lazy; "recomputes the rewritten query" ];
      [ "eager: store once"; fms t_store; "STORE PROVENANCE ... INTO" ];
      [ "eager: per read"; fms t_eager; "scan of the stored table" ];
      [
        "break-even";
        Printf.sprintf "%.1f reads" break_even;
        "store cost amortized vs lazy";
      ];
    ]

(* ------------------------------------------------------------------ *)
(* B4: contribution-semantics cost                                     *)
(* ------------------------------------------------------------------ *)

let b4 ~size =
  let e = forum_engine size in
  let variant name sql = [ name; fms (time_query e sql) ] in
  print_table
    (Printf.sprintf "B4: contribution semantics cost (forum %d, q3 shape)" size)
    [ "variant"; "ms" ]
    [
      variant "plain (no provenance)"
        "SELECT count(*), text FROM v1 JOIN approved a ON v1.mid = a.mid \
         GROUP BY v1.mid, text";
      variant "INFLUENCE"
        "SELECT PROVENANCE ON CONTRIBUTION (INFLUENCE) count(*), text FROM \
         v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text";
      variant "COPY"
        "SELECT PROVENANCE ON CONTRIBUTION (COPY) count(*), text FROM v1 \
         JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text";
      variant "COPY COMPLETE"
        "SELECT PROVENANCE ON CONTRIBUTION (COPY COMPLETE) count(*), text \
         FROM v1 JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text";
    ]

(* ------------------------------------------------------------------ *)
(* B5: scale sweep                                                     *)
(* ------------------------------------------------------------------ *)

let b5 sizes =
  let rows =
    List.concat_map
      (fun size ->
        let e = forum_engine size in
        List.filter_map
          (fun (cls, q, qp) ->
            if cls = "SPJ" || cls = "AGG (q3)" then begin
              let t0 = time_query e q in
              let t1 = time_query e qp in
              Some [ cls; string_of_int size; fms t0; fms t1; ffac (t1 /. t0) ]
            end
            else None)
          query_classes)
      sizes
  in
  print_table "B5: provenance overhead vs. scale"
    [ "class"; "messages"; "original ms"; "provenance ms"; "overhead" ]
    rows

(* ------------------------------------------------------------------ *)
(* B6: optimizer ablation on rewritten queries                         *)
(* ------------------------------------------------------------------ *)

let b6 ~size =
  let e = forum_engine size in
  let queries =
    [
      ( "SPJ+prov",
        "SELECT PROVENANCE m.text FROM messages m JOIN approved a ON m.mid = \
         a.mid WHERE m.mid % 11 = 0" );
      ( "AGG+prov",
        "SELECT PROVENANCE count(*), text FROM v1 JOIN approved a ON v1.mid \
         = a.mid GROUP BY v1.mid, text" );
      ( "nested prov subquery",
        "SELECT text FROM (SELECT PROVENANCE count(*) AS cnt, text FROM v1 \
         JOIN approved a ON v1.mid = a.mid GROUP BY v1.mid, text) p WHERE \
         p.prov_imports_origin = 'superForum'" );
    ]
  in
  let rows =
    List.map
      (fun (name, sql) ->
        Engine.set_optimizer_config e Planner.default_config;
        let t_on = time_query e sql in
        Engine.set_optimizer_config e Planner.disabled_config;
        let t_off = time_query e sql in
        Engine.set_optimizer_config e Planner.default_config;
        [ name; fms t_on; fms t_off; ffac (t_off /. t_on) ])
      queries
  in
  print_table "B6: planner ablation (rewritten queries, optimizer on vs off)"
    [ "query"; "optimized ms"; "unoptimized ms"; "speedup" ]
    rows

(* ------------------------------------------------------------------ *)
(* B7: TPC-H-like warehouse queries (companion ICDE'09 evaluation shape) *)
(* ------------------------------------------------------------------ *)

let b7 ~scale =
  let e = Engine.create () in
  Perm_workload.Star.load e ~scale ();
  let rows =
    List.map
      (fun (name, q, qp) ->
        let t0 = time_query e q in
        let t1 = time_query e qp in
        [ name; fms t0; fms t1; ffac (t1 /. t0) ])
      Perm_workload.Star.queries
  in
  print_table
    (Printf.sprintf
       "B7: TPC-H-like star schema, provenance overhead (scale %d orders)" scale)
    [ "query"; "original ms"; "provenance ms"; "overhead" ]
    rows

(* ------------------------------------------------------------------ *)
(* B7-par: morsel-driven parallel executor speedup sweep.               *)
(* Serial baseline vs. the domain pool at 1, 2 and 4 workers on the     *)
(* scale-sweep join/aggregation queries. A 1-domain pool isolates the   *)
(* framework overhead (morsel slicing + batch machinery, no extra       *)
(* hardware); speedups > 1 need actual cores.                           *)
(* ------------------------------------------------------------------ *)

let b7_par_queries =
  [
    ("scan+filter", "SELECT mid, text FROM messages WHERE mid % 3 = 0");
    ( "join probe",
      "SELECT m.text, u.name FROM messages m, users u WHERE m.uid = u.uid" );
    ( "aggregate",
      "SELECT uid, count(*), max(mid) FROM messages GROUP BY uid" );
    ( "join+prov",
      "SELECT PROVENANCE m.text, a.uid FROM messages m JOIN approved a ON \
       m.mid = a.mid" );
  ]

let b7_par_domains = [ 1; 2; 4 ]

(* [(query, serial_ns, [(domains, ns)])] — shared by the table printer and
   the BENCH_phases.json section. *)
let b7_par_measure ~size =
  let e = Engine.create () in
  Forum.load_scaled e ~messages:size ~users:(max 10 (size / 20)) ();
  Gc.compact ();
  Engine.set_parallel_threshold e 1;
  let rows =
    List.map
      (fun (name, sql) ->
        Engine.set_parallel e Engine.Par_off;
        let t_serial = time_query e sql in
        let par =
          List.map
            (fun n ->
              Engine.set_parallel e (Engine.Par_domains n);
              (n, time_query e sql))
            b7_par_domains
        in
        Engine.set_parallel e Engine.Par_off;
        (name, t_serial, par))
      b7_par_queries
  in
  Engine.close e;
  rows

let b7_par ~size =
  let measured = b7_par_measure ~size in
  let rows =
    List.map
      (fun (name, t_serial, par) ->
        name :: fms t_serial
        :: List.concat_map (fun (_, t) -> [ fms t; ffac (t_serial /. t) ]) par)
      measured
  in
  print_table
    (Printf.sprintf
       "B7-par: morsel-driven parallel speedup (forum %d messages, %d \
        hardware cores)"
       size
       (Domain.recommended_domain_count ()))
    ([ "query"; "serial ms" ]
    @ List.concat_map
        (fun n -> [ Printf.sprintf "%dd ms" n; Printf.sprintf "%dd speedup" n ])
        b7_par_domains)
    rows

(* ------------------------------------------------------------------ *)
(* B8: hash-index ablation — provenance queries benefit from standard   *)
(* relational access paths (paper 1: "storage techniques developed for  *)
(* relational databases")                                               *)
(* ------------------------------------------------------------------ *)

let b8 ~size =
  let e = Engine.create () in
  Forum.load_scaled e ~messages:size ~users:(max 10 (size / 20)) ();
  Gc.compact ();
  let queries =
    [
      ("point lookup", "SELECT text FROM messages WHERE mid = 17");
      ("point lookup + provenance", "SELECT PROVENANCE text FROM messages WHERE mid = 17");
      ( "selective join + provenance",
        "SELECT PROVENANCE m.text, a.uid FROM messages m JOIN approved a ON \
         m.mid = a.mid WHERE m.mid = 17" );
    ]
  in
  let rows =
    List.map
      (fun (name, sql) ->
        (match Engine.execute e "DROP INDEX m_mid" with Ok _ | Error _ -> ());
        let t_noidx = time_query e sql in
        (match Engine.execute e "CREATE INDEX m_mid ON messages (mid)" with
        | Ok _ -> ()
        | Error msg -> failwith msg);
        let t_idx = time_query e sql in
        [ name; fms t_noidx; fms t_idx; ffac (t_noidx /. t_idx) ])
      queries
  in
  print_table
    (Printf.sprintf "B8: hash-index ablation (forum %d messages)" size)
    [ "query"; "no index ms"; "indexed ms"; "speedup" ]
    rows

(* ------------------------------------------------------------------ *)
(* B8-guard: resource-governor overhead — the per-operator cancellation *)
(* guard is only compiled in when a limit is armed, so the interesting  *)
(* number is armed-but-never-firing vs. guardrails off.                 *)
(* ------------------------------------------------------------------ *)

let guard_queries =
  [
    ("scan-filter", "SELECT mid, text FROM messages WHERE mid % 3 = 0");
    ( "join +prov",
      "SELECT PROVENANCE m.text, u.name FROM messages m, users u WHERE \
       m.uid = u.uid" );
    ("agg", "SELECT uid, count(*), max(mid) FROM messages GROUP BY uid");
  ]

let b8_guard_measure ~size =
  (* a private serial engine: the shared forum_cache engine may have been
     left in parallel mode by B7-par, which would swamp the guard delta *)
  let e = Engine.create () in
  Forum.load_scaled e ~messages:size ~users:(max 10 (size / 20)) ();
  (* spill off: the armed arm must exercise the kill-switch guard, not
     the graceful spill threshold *)
  Engine.set_spill e false;
  (* run the whole battery once before measuring anything: the heap grows
     to working size on the first heavy query, and whichever arm ran
     first would otherwise eat that cost as phantom overhead *)
  List.iter (fun (_, sql) -> run_query e sql) guard_queries;
  Gc.compact ();
  List.map
    (fun (name, sql) ->
      Engine.set_statement_timeout e 0.;
      Engine.set_tuple_budget e 0;
      let t_off = time_query e sql in
      (* armed but never firing: a one-hour deadline and an absurd tuple
         budget measure the pure bookkeeping cost of the guard *)
      Engine.set_statement_timeout e 3_600_000.;
      Engine.set_tuple_budget e 1_000_000_000;
      let t_armed = time_query e sql in
      Engine.set_statement_timeout e 0.;
      Engine.set_tuple_budget e 0;
      (name, t_off, t_armed))
    guard_queries

let b8_guard ~size =
  let rows =
    List.map
      (fun (name, t_off, t_armed) ->
        [ name; fms t_off; fms t_armed; ffac (t_armed /. t_off) ])
      (b8_guard_measure ~size)
  in
  print_table
    (Printf.sprintf
       "B8-guard: governor guard overhead, armed-but-idle vs. off (forum %d \
        messages)"
       size)
    [ "query"; "guards off ms"; "armed ms"; "overhead" ]
    rows

(* ------------------------------------------------------------------ *)
(* B9-prof: plan-node profiler overhead. The uninstrumented path        *)
(* compiles identical closures with no wrapper, so "profiler off" must  *)
(* stay at the plain-path baseline (EXPERIMENTS.md targets <= 1.1x);    *)
(* "profiler on" prices the per-pull counters + timer.                  *)
(* ------------------------------------------------------------------ *)

(* same battery as the governor bench: scan-filter, rewritten join, agg *)
let prof_queries = guard_queries

let b9_prof_measure ~size =
  let e = Engine.create () in
  Forum.load_scaled e ~messages:size ~users:(max 10 (size / 20)) ();
  (* warm the heap before measuring either arm (see b8_guard_measure) *)
  List.iter (fun (_, sql) -> run_query e sql) prof_queries;
  Gc.compact ();
  List.map
    (fun (name, sql) ->
      Engine.set_instrumentation e false;
      let t_off = time_query e sql in
      Engine.set_instrumentation e true;
      let t_on = time_query e sql in
      Engine.set_instrumentation e false;
      (name, t_off, t_on))
    prof_queries

let b9_prof ~size =
  let rows =
    List.map
      (fun (name, t_off, t_on) ->
        [ name; fms t_off; fms t_on; ffac (t_on /. t_off) ])
      (b9_prof_measure ~size)
  in
  print_table
    (Printf.sprintf
       "B9-prof: plan-node profiler overhead, on vs. off (forum %d messages)"
       size)
    [ "query"; "profiler off ms"; "profiler on ms"; "overhead" ]
    rows

(* ------------------------------------------------------------------ *)
(* B10-hist: telemetry-history overhead. Recording is one ring push +   *)
(* a watchdog baseline check per top-level statement, so the on/off     *)
(* delta should be flat (EXPERIMENTS.md targets < 5% on this battery).  *)
(* ------------------------------------------------------------------ *)

let hist_queries = guard_queries

let b10_hist_measure ~size =
  let e = Engine.create () in
  Forum.load_scaled e ~messages:size ~users:(max 10 (size / 20)) ();
  let h = Engine.history e in
  (* warm the heap before measuring either arm (see b8_guard_measure) *)
  List.iter (fun (_, sql) -> run_query e sql) hist_queries;
  Gc.compact ();
  List.map
    (fun (name, sql) ->
      Perm_obs.History.set_capacity h 0;
      let t_off = time_query e sql in
      Perm_obs.History.set_capacity h 128;
      let t_on = time_query e sql in
      Perm_obs.History.set_capacity h 0;
      (name, t_off, t_on))
    hist_queries

let b10_hist ~size =
  let rows =
    List.map
      (fun (name, t_off, t_on) ->
        [ name; fms t_off; fms t_on; ffac (t_on /. t_off) ])
      (b10_hist_measure ~size)
  in
  print_table
    (Printf.sprintf
       "B10-hist: telemetry history overhead, on vs. off (forum %d messages)"
       size)
    [ "query"; "history off ms"; "history on ms"; "overhead" ]
    rows

(* ------------------------------------------------------------------ *)
(* B11-http: HTTP observability plane overhead. The server reads only   *)
(* snapshots under the engine's obs lock (held for microseconds per     *)
(* statement), so the guard battery under concurrent scrape load must   *)
(* match the server-off baseline within noise (EXPERIMENTS.md < 5%).    *)
(* ------------------------------------------------------------------ *)

let http_queries = guard_queries

(* Bechamel refuses to start sampling until the major heap stabilizes,
   which can never happen while scraper domains allocate concurrently —
   so B11 times both arms with the same plain monotonic loop. Returns
   (median, min): the median prices CPU sharing with the scrapers (an
   artifact of core count, gone with >= 2 cores), while the min is the
   collision-free floor — the statistic that would rise if the plane's
   locking actually blocked the query path, since a scrape is in flight
   almost continuously at bench cadence. *)
let time_query_plain engine sql =
  let clock = Toolkit.Monotonic_clock.make () in
  let now () = Toolkit.Monotonic_clock.get clock in
  let budget_ns = !quota *. 1e9 in
  let samples = ref [] in
  let count = ref 0 in
  let spent = ref 0. in
  (* the sample cap only bounds pathologically fast queries; the median
     must span many scrape cycles, so it has to be high enough that a
     microsecond-scale query still samples across >> 100 ms of wall clock *)
  while !spent < budget_ns && !count < 20_000 do
    let t0 = now () in
    run_query engine sql;
    let dt = now () -. t0 in
    samples := dt :: !samples;
    incr count;
    spent := !spent +. dt
  done;
  let sorted = List.sort Float.compare !samples in
  (List.nth sorted (List.length sorted / 2), List.hd sorted)

let b11_http_measure ~size =
  let e = Engine.create () in
  Forum.load_scaled e ~messages:size ~users:(max 10 (size / 20)) ();
  (* the server raises the minor heap while it runs (fewer cross-domain
     GC barriers); apply the same sizing to the server-off arm so the two
     arms compare GC-for-GC, then restore afterwards *)
  let saved_gc = Gc.get () in
  Gc.set { saved_gc with Gc.minor_heap_size = 4 * 1024 * 1024 };
  Fun.protect ~finally:(fun () -> Gc.set saved_gc) @@ fun () ->
  (* warm the heap before measuring either arm (see b8_guard_measure) *)
  List.iter (fun (_, sql) -> run_query e sql) http_queries;
  Gc.compact ();
  let off =
    List.map (fun (name, sql) -> (name, time_query_plain e sql)) http_queries
  in
  match Perm_engine.Obs_server.start ~port:0 e with
  | Error msg -> failwith ("B11-http: observability server refused: " ^ msg)
  | Ok srv ->
    let port = Perm_engine.Obs_server.port srv in
    let stop = Atomic.make false in
    let scrapes = Atomic.make 0 in
    (* two scraper domains at a 100 ms cadence: one on the full Prometheus
       exposition, one on a JSON stat relation — ~150x more aggressive
       than Prometheus' default 15 s scrape interval, so a scrape overlaps
       most in-flight queries without degenerating into a pure
       CPU-starvation test on single-core machines *)
    let scraper path =
      Domain.spawn (fun () ->
          while not (Atomic.get stop) do
            (match Perm_obs.Httpd.get ~port path with
            | Ok _ -> Atomic.incr scrapes
            | Error _ -> ());
            Unix.sleepf 0.1
          done)
    in
    let scrapers = [ scraper "/metrics"; scraper "/stats/perm_stat_statements" ] in
    let on =
      List.map (fun (name, sql) -> (name, time_query_plain e sql)) http_queries
    in
    Atomic.set stop true;
    List.iter Domain.join scrapers;
    Perm_engine.Obs_server.stop srv;
    let rows =
      List.map2
        (fun (name, off_t) (name', on_t) ->
          assert (name = name');
          (name, off_t, on_t))
        off on
    in
    (rows, Atomic.get scrapes)

let b11_http ~size =
  let measured, scrapes = b11_http_measure ~size in
  let rows =
    List.map
      (fun (name, (off_med, off_min), (on_med, on_min)) ->
        [
          name;
          fms off_med;
          fms on_med;
          ffac (on_med /. off_med);
          fms off_min;
          fms on_min;
          ffac (on_min /. off_min);
        ])
      measured
  in
  print_table
    (Printf.sprintf
       "B11-http: query latency with the HTTP plane scraping vs. off (forum \
        %d messages, %d scrapes served; min = collision-free floor)"
       size scrapes)
    [
      "query";
      "off med ms";
      "scraped med ms";
      "med overhead";
      "off min ms";
      "scraped min ms";
      "floor overhead";
    ]
    rows

(* ------------------------------------------------------------------ *)
(* B12-vec: vectorized batch-at-a-time executor vs the row-at-a-time    *)
(* closures, per query class, plus a batch_rows sweep. Serial on both   *)
(* arms: this isolates the kernel/dispatch win from parallelism (B7-par *)
(* covers the combination).                                             *)
(* ------------------------------------------------------------------ *)

let b12_vec_queries =
  [
    ("scan+filter", "SELECT mid, text FROM messages WHERE mid % 3 = 0");
    ("project+expr", "SELECT mid * 2 + uid, upper(text) FROM messages");
    ( "join probe",
      "SELECT m.text, u.name FROM messages m, users u WHERE m.uid = u.uid" );
    ("aggregate", "SELECT uid, count(*), max(mid) FROM messages GROUP BY uid");
    ( "prov join",
      "SELECT PROVENANCE m.text, a.uid FROM messages m JOIN approved a ON \
       m.mid = a.mid" );
  ]

let b12_vec_sweep = [ 256; 1_024; 4_096 ]

(* [(query, row_ns, [(batch_rows, ns)])] — shared by the table printer and
   the BENCH_phases.json "vectorized" section. *)
let b12_vec_measure ~size =
  let e = Engine.create () in
  Forum.load_scaled e ~messages:size ~users:(max 10 (size / 20)) ();
  Gc.compact ();
  Engine.set_parallel e Engine.Par_off;
  let rows =
    List.map
      (fun (name, sql) ->
        Engine.set_vectorized e false;
        let t_row = time_query e sql in
        Engine.set_vectorized e true;
        let sweep =
          List.map
            (fun bn ->
              Engine.set_batch_rows e bn;
              (bn, time_query e sql))
            b12_vec_sweep
        in
        Engine.set_batch_rows e Perm_executor.Executor.default_batch_rows;
        (name, t_row, sweep))
      b12_vec_queries
  in
  Engine.close e;
  rows

let b12_vec ~size =
  let measured = b12_vec_measure ~size in
  let rows =
    List.map
      (fun (name, t_row, sweep) ->
        name :: fms t_row
        :: List.concat_map
             (fun (_, t) -> [ fms t; ffac (t_row /. t) ])
             sweep)
      measured
  in
  print_table
    (Printf.sprintf
       "B12-vec: batch-at-a-time executor vs row closures (forum %d \
        messages, serial)"
       size)
    ([ "query"; "row ms" ]
    @ List.concat_map
        (fun bn -> [ Printf.sprintf "b%d ms" bn; Printf.sprintf "b%d speedup" bn ])
        b12_vec_sweep)
    rows

(* ------------------------------------------------------------------ *)
(* B13-wal: durability cost. Per-statement WAL logging prices one       *)
(* append per mutation plus a sealed commit frame; fsync-on-commit adds *)
(* the stable-storage wait. The spill sweep prices graceful             *)
(* degradation: the same sort+join under shrinking tuple budgets,       *)
(* external runs and chunked builds vs all in memory.                   *)
(* ------------------------------------------------------------------ *)

let b13_inserts = 300

let b13_temp_dir () =
  let d = Filename.temp_file "perm_bench_wal" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let b13_wal_measure () =
  let clock = Toolkit.Monotonic_clock.make () in
  let now () = Toolkit.Monotonic_clock.get clock in
  let exec e sql =
    match Engine.execute e sql with
    | Ok _ -> ()
    | Error msg -> failwith ("B13-wal: " ^ msg)
  in
  let arm ~wal ~fsync =
    let e = Engine.create () in
    let dir = if wal then Some (b13_temp_dir ()) else None in
    (match dir with
    | Some d -> (
      match Engine.enable_wal e d with
      | Ok _ -> Engine.set_wal_fsync e fsync
      | Error err -> failwith ("B13-wal: " ^ Perm_err.to_string err))
    | None -> ());
    exec e "CREATE TABLE b13 (k INTEGER, v TEXT);";
    (* warm: the first inserts pay heap growth and, on the WAL arms,
       file creation *)
    for i = 0 to 49 do
      exec e (Printf.sprintf "INSERT INTO b13 VALUES (%d, 'warm%d');" i i)
    done;
    let t0 = now () in
    for i = 0 to b13_inserts - 1 do
      exec e (Printf.sprintf "INSERT INTO b13 VALUES (%d, 'row%d');" (i + 50) i)
    done;
    let dt = now () -. t0 in
    Engine.close e;
    (match dir with
    | Some d ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote d)))
    | None -> ());
    dt /. float_of_int b13_inserts
  in
  [
    ("wal off", arm ~wal:false ~fsync:false);
    ("wal on, fsync off", arm ~wal:true ~fsync:false);
    ("wal on, fsync on", arm ~wal:true ~fsync:true);
  ]

(* 0 = budget off (pure in-memory); the small budgets force external
   sort runs and chunked join builds through the spill path *)
let b13_spill_budgets = [ 0; 20_000; 2_000; 500 ]

let b13_spill_measure ~size =
  let e = Engine.create () in
  Forum.load_scaled e ~messages:size ~users:(max 10 (size / 20)) ();
  Gc.compact ();
  let sql =
    "SELECT m.text, u.name FROM messages m, users u WHERE m.uid = u.uid \
     ORDER BY m.text, u.name"
  in
  let rows =
    List.map
      (fun budget ->
        Engine.set_tuple_budget e budget;
        (budget, time_query e sql))
      b13_spill_budgets
  in
  Engine.set_tuple_budget e 0;
  Engine.close e;
  rows

let b13_wal ~size =
  let wal_rows =
    let base = ref 0. in
    List.map
      (fun (name, t) ->
        if !base = 0. then base := t;
        [ name; fms t; ffac (t /. !base) ])
      (b13_wal_measure ())
  in
  print_table
    (Printf.sprintf
       "B13-wal: per-insert durability cost (%d single-row inserts)"
       b13_inserts)
    [ "arm"; "ms/insert"; "vs off" ]
    wal_rows;
  let spill_rows =
    List.map
      (fun (budget, t) ->
        [
          (if budget = 0 then "off (in memory)" else string_of_int budget);
          fms t;
        ])
      (b13_spill_measure ~size)
  in
  print_table
    (Printf.sprintf
       "B13-spill: tuple-budget sweep through the spilling sort+join (forum \
        %d messages)"
       size)
    [ "tuple budget"; "ms" ]
    spill_rows

(* ------------------------------------------------------------------ *)
(* B14-forensics: flight-recorder overhead, on vs. off. Recording is a  *)
(* handful of wait-free ring pushes per statement (start, finish, plan  *)
(* milestones), so the on/off delta over the B12 battery must stay flat *)
(* (EXPERIMENTS.md targets <= 5% median) — the number that justifies    *)
(* keeping the recorder on by default. The anomaly burst prices the     *)
(* slow path: a failing statement pays classification plus a full       *)
(* forensics-bundle snapshot.                                           *)
(* ------------------------------------------------------------------ *)

let b14_forensics_queries = b12_vec_queries

let b14_forensics_measure ~size =
  let e = Engine.create () in
  Forum.load_scaled e ~messages:size ~users:(max 10 (size / 20)) ();
  let r = Engine.recorder e in
  (* warm the heap before measuring either arm (see b8_guard_measure) *)
  List.iter (fun (_, sql) -> run_query e sql) b14_forensics_queries;
  Gc.compact ();
  (* the delta under test is a handful of wait-free ring pushes plus a
     ten-entry metric snapshot per statement — single-digit microseconds,
     far below this battery's run-to-run scheduling noise on the
     multi-millisecond joins. Like B11, sample each arm with the plain
     monotonic loop and keep (median, min): the min is the
     interference-free floor, the statistic that would rise if recording
     actually cost anything on the hot path. *)
  let arm capacity sql =
    Perm_obs.Recorder.set_capacity r capacity;
    time_query_plain e sql
  in
  let rows =
    List.map
      (fun (name, sql) ->
        let off = arm 0 sql in
        let on = arm 512 sql in
        (name, off, on))
      b14_forensics_queries
  in
  Engine.close e;
  rows

let b14_burst_statements = 200

(* Every statement in the burst fails, so each one pays anomaly
   classification plus a full bundle snapshot (metrics delta, event
   tail, settings). Retention is capped below the burst size, so the
   store churns — pruning is part of the measured cost. *)
let b14_burst_measure () =
  let e = Engine.create () in
  Forum.load_scaled e ~messages:200 ~users:10 ();
  Engine.Forensics.set_capacity e 32;
  (* warm: the first failures pay classifier and bundle-alloc heap growth *)
  for _ = 1 to 20 do
    ignore (Engine.execute e "SELECT broken FROM nowhere")
  done;
  Gc.compact ();
  let clock = Toolkit.Monotonic_clock.make () in
  let now () = Toolkit.Monotonic_clock.get clock in
  let t0 = now () in
  for _ = 1 to b14_burst_statements do
    ignore (Engine.execute e "SELECT broken FROM nowhere")
  done;
  let dt = now () -. t0 in
  let retained = List.length (Engine.Forensics.list e) in
  Engine.close e;
  (dt /. float_of_int b14_burst_statements, retained)

let b14_forensics ~size =
  let rows =
    List.map
      (fun (name, (off_med, off_min), (on_med, on_min)) ->
        [
          name;
          fms off_med;
          fms on_med;
          ffac (on_med /. off_med);
          fms off_min;
          fms on_min;
          ffac (on_min /. off_min);
        ])
      (b14_forensics_measure ~size)
  in
  print_table
    (Printf.sprintf
       "B14-forensics: flight recorder overhead, on vs. off (forum %d \
        messages; min = interference-free floor)"
       size)
    [
      "query";
      "off med ms";
      "on med ms";
      "med overhead";
      "off min ms";
      "on min ms";
      "floor overhead";
    ]
    rows;
  let per_anomaly, retained = b14_burst_measure () in
  Printf.printf
    "  anomaly burst: %d failing statements, %.3f ms/anomaly (bundle \
     capture included), %d bundles retained\n"
    b14_burst_statements (ms per_anomaly) retained

(* ------------------------------------------------------------------ *)
(* Smoke mode: one instrumented pass over representative queries,       *)
(* reporting the engine's own per-phase breakdown (no Bechamel); with   *)
(* --json the breakdowns and the session metrics land in                *)
(* BENCH_phases.json for offline comparison.                            *)
(* ------------------------------------------------------------------ *)

module Json = Perm_obs.Json
module Trace = Perm_obs.Trace
module Metrics = Perm_obs.Metrics

(* One smoke entry: query name, total milliseconds, per-phase milliseconds. *)
type smoke_entry = {
  sm_name : string;
  sm_sql : string;
  sm_total_ms : float;
  sm_phases : (string * float) list;
}

(* Parallel-mode smoke entries: run with instrumentation off to price the
   bare parallel path, the threshold lowered to reach the 1000-row smoke
   relations, and a 2-domain pool. The PAR prefix keeps them apart in the
   regression baseline. *)
let smoke_parallel_queries =
  [
    ("PAR scan", "SELECT mid, text FROM messages WHERE mid % 3 = 0");
    ( "PAR join",
      "SELECT m.text, u.name FROM messages m, users u WHERE m.uid = u.uid" );
    ("PAR agg", "SELECT uid, count(*), max(mid) FROM messages GROUP BY uid");
  ]

let run_smoke () =
  let e = Engine.create () in
  Forum.load_scaled e ~messages:1_000 ~users:50 ();
  Engine.set_instrumentation e true;
  let queries =
    List.concat_map
      (fun (cls, q, qp) -> [ (cls, q); (cls ^ " +prov", qp) ])
      query_classes
  in
  print_endline "\n## smoke: engine phase breakdown per query (1000 messages)\n";
  let entry (name, sql) =
    (match Engine.execute e sql with
    | Ok _ -> ()
    | Error msg ->
      failwith (Printf.sprintf "smoke query %S failed: %s" name msg));
    let root =
      match Engine.last_trace e with
      | Some r -> r
      | None -> failwith "engine recorded no trace"
    in
    let phases =
      List.map
        (fun sp -> (Trace.name sp, Trace.duration_ms sp))
        (Trace.children root)
    in
    Printf.printf "  %-16s %9.3f ms  (%s)\n" name (Trace.duration_ms root)
      (String.concat ", "
         (List.map (fun (n, d) -> Printf.sprintf "%s %.3f" n d) phases));
    {
      sm_name = name;
      sm_sql = sql;
      sm_total_ms = Trace.duration_ms root;
      sm_phases = phases;
    }
  in
  let entries = List.map entry queries in
  Engine.set_instrumentation e false;
  Engine.set_parallel_threshold e 1;
  Engine.set_parallel e (Engine.Par_domains 2);
  (* warm-up: create the worker pool outside the measured entries *)
  (match Engine.query e "SELECT mid FROM messages" with
  | Ok _ -> ()
  | Error msg -> failwith ("smoke parallel warm-up failed: " ^ msg));
  let par_entries = List.map entry smoke_parallel_queries in
  Engine.set_parallel e Engine.Par_off;
  flush stdout;
  (e, entries @ par_entries)

let smoke ~json () =
  let e, entries = run_smoke () in
  if json then begin
    let m = Engine.metrics e in
    Metrics.set_gc_gauges m;
    (* The B7-par speedup sweep rides along in the baseline document so
       parallel-executor performance is tracked alongside the phase
       breakdowns. A small scale + quota keeps the smoke pass quick. *)
    let saved_quota = !quota in
    let progress what =
      Printf.eprintf "[smoke] measuring %s...\n%!" what
    in
    quota := 0.15;
    progress "b7_par";
    let par_measured = b7_par_measure ~size:4_000 in
    (* B12-vec rides along: the row-closure baseline vs the batch path per
       query class plus the batch_rows sweep — EXPERIMENTS.md quotes the
       serial speedups from here. *)
    progress "b12_vec_measure";
    let vec_measured = b12_vec_measure ~size:4_000 in
    (* B8-guard rides along too: the regression gate only reads "queries",
       so the guardrails section is informational — EXPERIMENTS.md quotes
       the armed-but-idle overhead from here. A small relation keeps every
       query in the low-millisecond range so the quota buys enough samples
       for the off/armed delta to be signal, not run-to-run noise. *)
    quota := 0.3;
    progress "b8_guard_measure";
    let guard_measured = b8_guard_measure ~size:1_000 in
    (* B9-prof rides along the same way: EXPERIMENTS.md quotes the
       profiler-off arm (must stay at the plain-path baseline) and the
       profiler-on overhead from here. *)
    progress "b9_prof_measure";
    let prof_measured = b9_prof_measure ~size:1_000 in
    (* B10-hist rides along the same way: EXPERIMENTS.md quotes the
       history-recording overhead (acceptance target < 5%) from here. *)
    progress "b10_hist_measure";
    let hist_measured = b10_hist_measure ~size:1_000 in
    (* B11-http rides along the same way: EXPERIMENTS.md quotes the
       under-scrape overhead (acceptance target: within noise of the
       server-off arm) from here. *)
    progress "b11_http_measure";
    let http_measured, http_scrapes = b11_http_measure ~size:1_000 in
    (* B13-wal rides along: EXPERIMENTS.md quotes the per-insert WAL and
       fsync cost and the spill-threshold sweep from here. *)
    progress "b13_wal_measure";
    let wal_measured = b13_wal_measure () in
    progress "b13_spill_measure";
    let spill_measured = b13_spill_measure ~size:1_000 in
    (* B14-forensics rides along: EXPERIMENTS.md quotes the recorder-on
       overhead (acceptance target < 5% median) and the anomaly-burst
       bundle-capture cost from here. *)
    progress "b14_forensics_measure";
    let forensics_measured = b14_forensics_measure ~size:1_000 in
    progress "b14_burst_measure";
    let forensics_burst_ms, forensics_retained = b14_burst_measure () in
    quota := saved_quota;
    let profiler_section =
      Json.Obj
        [
          ("forum_messages", Json.Int 1_000);
          ( "queries",
            Json.List
              (List.map
                 (fun (name, t_off, t_on) ->
                   Json.Obj
                     [
                       ("name", Json.String name);
                       ("off_ms", Json.Float (ms t_off));
                       ("on_ms", Json.Float (ms t_on));
                       ("overhead", Json.Float (t_on /. t_off));
                     ])
                 prof_measured) );
        ]
    in
    let history_section =
      Json.Obj
        [
          ("forum_messages", Json.Int 1_000);
          ( "queries",
            Json.List
              (List.map
                 (fun (name, t_off, t_on) ->
                   Json.Obj
                     [
                       ("name", Json.String name);
                       ("off_ms", Json.Float (ms t_off));
                       ("on_ms", Json.Float (ms t_on));
                       ("overhead", Json.Float (t_on /. t_off));
                     ])
                 hist_measured) );
        ]
    in
    let forensics_section =
      Json.Obj
        [
          ("forum_messages", Json.Int 1_000);
          ( "queries",
            Json.List
              (List.map
                 (fun (name, (off_med, off_min), (on_med, on_min)) ->
                   Json.Obj
                     [
                       ("name", Json.String name);
                       ("off_ms", Json.Float (ms off_med));
                       ("on_ms", Json.Float (ms on_med));
                       ("overhead", Json.Float (on_med /. off_med));
                       ("off_min_ms", Json.Float (ms off_min));
                       ("on_min_ms", Json.Float (ms on_min));
                       ("floor_overhead", Json.Float (on_min /. off_min));
                     ])
                 forensics_measured) );
          ( "anomaly_burst",
            Json.Obj
              [
                ("statements", Json.Int b14_burst_statements);
                ("ms_per_anomaly", Json.Float (ms forensics_burst_ms));
                ("bundles_retained", Json.Int forensics_retained);
              ] );
        ]
    in
    let http_section =
      Json.Obj
        [
          ("forum_messages", Json.Int 1_000);
          ("scrapes_served", Json.Int http_scrapes);
          ( "queries",
            Json.List
              (List.map
                 (fun (name, (off_med, off_min), (on_med, on_min)) ->
                   Json.Obj
                     [
                       ("name", Json.String name);
                       ("off_ms", Json.Float (ms off_med));
                       ("scraped_ms", Json.Float (ms on_med));
                       ("overhead", Json.Float (on_med /. off_med));
                       ("off_min_ms", Json.Float (ms off_min));
                       ("scraped_min_ms", Json.Float (ms on_min));
                       ("floor_overhead", Json.Float (on_min /. off_min));
                     ])
                 http_measured) );
        ]
    in
    let guard_section =
      Json.Obj
        [
          ("forum_messages", Json.Int 1_000);
          ( "queries",
            Json.List
              (List.map
                 (fun (name, t_off, t_armed) ->
                   Json.Obj
                     [
                       ("name", Json.String name);
                       ("off_ms", Json.Float (ms t_off));
                       ("armed_ms", Json.Float (ms t_armed));
                       ("overhead", Json.Float (t_armed /. t_off));
                     ])
                 guard_measured) );
        ]
    in
    let parallel_section =
      Json.Obj
        [
          ("hardware_cores", Json.Int (Domain.recommended_domain_count ()));
          ("forum_messages", Json.Int 4_000);
          ( "queries",
            Json.List
              (List.map
                 (fun (name, t_serial, par) ->
                   Json.Obj
                     ([
                        ("name", Json.String name);
                        ("serial_ms", Json.Float (ms t_serial));
                      ]
                     @ List.concat_map
                         (fun (n, t) ->
                           [
                             ( Printf.sprintf "domains_%d_ms" n,
                               Json.Float (ms t) );
                             ( Printf.sprintf "domains_%d_speedup" n,
                               Json.Float (t_serial /. t) );
                           ])
                         par))
                 par_measured) );
        ]
    in
    let vectorized_section =
      Json.Obj
        [
          ("forum_messages", Json.Int 4_000);
          ("default_batch_rows", Json.Int Perm_executor.Executor.default_batch_rows);
          ( "queries",
            Json.List
              (List.map
                 (fun (name, t_row, sweep) ->
                   Json.Obj
                     ([
                        ("name", Json.String name);
                        ("row_ms", Json.Float (ms t_row));
                      ]
                     @ List.concat_map
                         (fun (bn, t) ->
                           [
                             ( Printf.sprintf "batch_%d_ms" bn,
                               Json.Float (ms t) );
                             ( Printf.sprintf "batch_%d_speedup" bn,
                               Json.Float (t_row /. t) );
                           ])
                         sweep))
                 vec_measured) );
        ]
    in
    let durability_section =
      Json.Obj
        [
          ("inserts", Json.Int b13_inserts);
          ( "wal",
            Json.List
              (List.map
                 (fun (name, t) ->
                   Json.Obj
                     [
                       ("arm", Json.String name);
                       ("ms_per_insert", Json.Float (ms t));
                     ])
                 wal_measured) );
          ("spill_forum_messages", Json.Int 1_000);
          ( "spill",
            Json.List
              (List.map
                 (fun (budget, t) ->
                   Json.Obj
                     [
                       ("tuple_budget", Json.Int budget);
                       ("ms", Json.Float (ms t));
                     ])
                 spill_measured) );
        ]
    in
    let doc =
      Json.Obj
        [
          ("suite", Json.String "perm-bench-smoke");
          ("forum_messages", Json.Int 1_000);
          ("durability", durability_section);
          ("vectorized", vectorized_section);
          ("parallel", parallel_section);
          ("guardrails", guard_section);
          ("profiler", profiler_section);
          ("history", history_section);
          ("http", http_section);
          ("forensics", forensics_section);
          ( "queries",
            Json.List
              (List.map
                 (fun en ->
                   Json.Obj
                     [
                       ("name", Json.String en.sm_name);
                       ("sql", Json.String en.sm_sql);
                       ("total_ms", Json.Float en.sm_total_ms);
                       ( "phases",
                         Json.Obj
                           (List.map
                              (fun (n, d) -> (n, Json.Float d))
                              en.sm_phases) );
                     ])
                 entries) );
          ("metrics", Metrics.to_json m);
        ]
    in
    Out_channel.with_open_text "BENCH_phases.json" (fun oc ->
        Out_channel.output_string oc (Json.to_pretty_string doc));
    print_endline "wrote BENCH_phases.json"
  end;
  entries

(* ------------------------------------------------------------------ *)
(* Regression gate: a fresh smoke pass vs. a committed baseline         *)
(* ------------------------------------------------------------------ *)

let load_baseline path =
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg -> failwith ("cannot read baseline: " ^ msg)
  in
  let doc =
    match Json.parse text with
    | Ok doc -> doc
    | Error msg -> failwith (Printf.sprintf "baseline %s: %s" path msg)
  in
  let queries =
    match Option.bind (Json.member "queries" doc) Json.to_list_opt with
    | Some qs -> qs
    | None -> failwith (Printf.sprintf "baseline %s has no \"queries\" list" path)
  in
  List.filter_map
    (fun q ->
      match
        ( Option.bind (Json.member "name" q) Json.to_string_opt,
          Option.bind (Json.member "total_ms" q) Json.to_float_opt )
      with
      | Some name, Some total ->
        let phases =
          match Json.member "phases" q with
          | Some (Json.Obj fields) ->
            List.filter_map
              (fun (n, v) ->
                Option.map (fun f -> (n, f)) (Json.to_float_opt v))
              fields
          | _ -> []
        in
        Some (name, total, phases)
      | _ -> None)
    queries

(* A measurement regresses when it exceeds [baseline * tolerance + slack]:
   the multiplicative part catches real slowdowns, the additive slack keeps
   micro-phase noise (a few tens of microseconds) from tripping the gate. *)
let compare_baseline ~path ~tolerance ~slack entries =
  let baseline = load_baseline path in
  let regressions = ref [] in
  let flag what base cur =
    if cur > (base *. tolerance) +. slack then
      regressions := Printf.sprintf "%s: %.3f ms -> %.3f ms" what base cur :: !regressions
  in
  let rows =
    List.map
      (fun (name, base_total, base_phases) ->
        match List.find_opt (fun en -> en.sm_name = name) entries with
        | None ->
          regressions := Printf.sprintf "%s: missing from fresh run" name :: !regressions;
          [ name; Printf.sprintf "%.3f" base_total; "-"; "-"; "MISSING" ]
        | Some en ->
          flag name base_total en.sm_total_ms;
          List.iter
            (fun (phase, base_ms) ->
              match List.assoc_opt phase en.sm_phases with
              | Some cur_ms -> flag (name ^ "/" ^ phase) base_ms cur_ms
              | None -> ())
            base_phases;
          let ratio =
            if base_total > 0. then en.sm_total_ms /. base_total else 1.
          in
          let status =
            if en.sm_total_ms > (base_total *. tolerance) +. slack then "REGRESSED"
            else "ok"
          in
          [
            name;
            Printf.sprintf "%.3f" base_total;
            Printf.sprintf "%.3f" en.sm_total_ms;
            Printf.sprintf "%.2fx" ratio;
            status;
          ])
      baseline
  in
  print_table
    (Printf.sprintf "bench --compare vs %s (tolerance %gx + %g ms slack)" path
       tolerance slack)
    [ "query"; "baseline ms"; "current ms"; "ratio"; "status" ]
    rows;
  match !regressions with
  | [] ->
    print_endline "bench compare: no regressions";
    0
  | rs ->
    Printf.printf "bench compare: %d regression%s\n" (List.length rs)
      (if List.length rs = 1 then "" else "s");
    List.iter (fun r -> Printf.printf "  REGRESSED %s\n" (r : string)) (List.rev rs);
    1

(* ------------------------------------------------------------------ *)

let arg_value flag =
  let n = Array.length Sys.argv in
  let rec go i =
    if i >= n - 1 then None
    else if Sys.argv.(i) = flag then Some Sys.argv.(i + 1)
    else go (i + 1)
  in
  go 1

let arg_float flag default =
  match arg_value flag with
  | Some s -> (
    match float_of_string_opt s with
    | Some f -> f
    | None -> failwith (Printf.sprintf "%s expects a number, got %S" flag s))
  | None -> default

let () =
  let fast = Array.exists (fun a -> a = "--fast") Sys.argv in
  let json = Array.exists (fun a -> a = "--json") Sys.argv in
  (match arg_value "--compare" with
  | Some baseline ->
    let tolerance = arg_float "--tolerance" 5.0 in
    let slack = arg_float "--slack" 25.0 in
    e2_sanity ();
    let _, entries = run_smoke () in
    exit (compare_baseline ~path:baseline ~tolerance ~slack entries)
  | None -> ());
  if Array.exists (fun a -> a = "--smoke") Sys.argv then begin
    e2_sanity ();
    ignore (smoke ~json ());
    exit 0
  end;
  if fast then quota := 0.1;
  let sizes = if fast then [ 1_000 ] else [ 1_000; 10_000; 50_000 ] in
  let sweep =
    if fast then [ 1_000; 5_000 ] else [ 1_000; 5_000; 20_000; 50_000 ]
  in
  let b2_rows = if fast then 5_000 else 40_000 in
  let b2_groups = if fast then [ 10; 1000 ] else [ 10; 1_000; 20_000 ] in
  let mid_size = if fast then 1_000 else 10_000 in
  print_endline
    "Perm reproduction benchmarks (see DESIGN.md section 5, EXPERIMENTS.md)";
  e2_sanity ();
  b1 sizes;
  b2 ~rows:b2_rows ~group_counts:b2_groups;
  b3 ~size:mid_size;
  b4 ~size:mid_size;
  b5 sweep;
  b6 ~size:mid_size;
  b7 ~scale:(if fast then 300 else 3_000);
  b7_par ~size:(if fast then 2_000 else 20_000);
  b12_vec ~size:(if fast then 2_000 else 20_000);
  b8 ~size:(if fast then 2_000 else 20_000);
  b8_guard ~size:(if fast then 2_000 else 20_000);
  b9_prof ~size:(if fast then 2_000 else 20_000);
  b10_hist ~size:(if fast then 2_000 else 20_000);
  b11_http ~size:(if fast then 2_000 else 20_000);
  b13_wal ~size:(if fast then 2_000 else 20_000);
  b14_forensics ~size:(if fast then 2_000 else 20_000);
  print_newline ()
